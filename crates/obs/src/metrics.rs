//! The metrics registry: named counters, gauges, running maxima, and
//! fixed-bucket latency histograms with Prometheus-style text
//! exposition.
//!
//! Series are identified by `(name, sorted labels)`. Handles are
//! `Arc`-shared atomics — register once (one short-lived registry lock),
//! then update lock-free from any thread. [`Metrics::expose`] renders
//! every series in deterministic order (names and label sets sort
//! lexicographically), which is what makes the exposition
//! snapshot-testable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A running maximum over positive finite `f64` observations.
///
/// Stored as the IEEE-754 bit pattern: positive f64 bit patterns order
/// identically to the values, so one integer `fetch_max` keeps the
/// maximum lock-free. NaN, infinities, and non-positive values are
/// **ignored** — NaN's bit pattern compares greater than every finite
/// value's, so one junk observation would otherwise poison the maximum
/// forever (the regression `max_gauge_ignores_nan` pins this).
#[derive(Debug, Default)]
pub struct MaxGauge(AtomicU64);

impl MaxGauge {
    /// Fold `v` into the maximum; junk values (NaN, ±∞, ≤ 0) are
    /// dropped.
    pub fn observe(&self, v: f64) {
        if v.is_finite() && v > 0.0 {
            self.0.fetch_max(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// The maximum seen, `None` before the first valid observation.
    pub fn get(&self) -> Option<f64> {
        let bits = self.0.load(Ordering::Relaxed);
        (bits != 0).then(|| f64::from_bits(bits))
    }
}

/// Default latency bucket upper bounds, in seconds: 10µs … 10s,
/// roughly ×2.5 per step. Covers cache hits (microseconds) through
/// cold heavy queries.
pub fn default_latency_buckets() -> Vec<f64> {
    vec![
        10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
        100e-3, 250e-3, 500e-3, 1.0, 2.5, 5.0, 10.0,
    ]
}

/// A fixed-bucket histogram. Buckets are cumulative at exposition time
/// (Prometheus `le` semantics); quantiles are derived by linear
/// interpolation within the bucket that crosses the rank.
#[derive(Debug)]
pub struct Histogram {
    /// Upper bounds, ascending; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    counts: Vec<AtomicU64>,
    /// Sum of observations, accumulated in nanounits to stay atomic.
    sum_nano: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    pub fn new(bounds: Vec<f64>) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds ascend");
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            counts,
            sum_nano: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// A histogram with the [`default_latency_buckets`].
    pub fn latency() -> Histogram {
        Histogram::new(default_latency_buckets())
    }

    /// Record one observation (for latency series: seconds).
    pub fn observe(&self, v: f64) {
        if !v.is_finite() || v < 0.0 {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_nano.fetch_add((v * 1e9) as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one duration, in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum_nano.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// The `q`-quantile (0 < q ≤ 1) estimated from the buckets: linear
    /// interpolation within the crossing bucket, the last finite bound
    /// for ranks landing in the overflow bucket. `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if seen + c >= rank {
                if i >= self.bounds.len() {
                    return Some(*self.bounds.last()?);
                }
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let hi = self.bounds[i];
                let within = if c == 0 {
                    0.0
                } else {
                    (rank - seen) as f64 / c as f64
                };
                return Some(lo + (hi - lo) * within);
            }
            seen += c;
        }
        self.bounds.last().copied()
    }

    /// Median.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// `(upper bound, cumulative count)` pairs, ending with `+Inf`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut acc = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            acc += c.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// `(name, sorted label pairs)` — the identity of one series.
type SeriesKey = (String, Vec<(String, String)>);

fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    (name.to_string(), labels)
}

fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", inner.join(","))
}

/// The registry: a named collection of series. Cheap to share
/// (`Arc<Metrics>`); series handles are themselves `Arc`s, so hot paths
/// register once and update without touching the registry again.
#[derive(Default)]
pub struct Metrics {
    counters: RwLock<BTreeMap<SeriesKey, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<SeriesKey, Arc<Gauge>>>,
    maxes: RwLock<BTreeMap<SeriesKey, Arc<MaxGauge>>>,
    histograms: RwLock<BTreeMap<SeriesKey, Arc<Histogram>>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The counter `name` (no labels), registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter `name` with `labels`.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let k = key(name, labels);
        if let Some(c) = self.counters.read().expect("metrics poisoned").get(&k) {
            return c.clone();
        }
        self.counters
            .write()
            .expect("metrics poisoned")
            .entry(k)
            .or_default()
            .clone()
    }

    /// The gauge `name` (no labels).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// The gauge `name` with `labels`.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let k = key(name, labels);
        if let Some(g) = self.gauges.read().expect("metrics poisoned").get(&k) {
            return g.clone();
        }
        self.gauges
            .write()
            .expect("metrics poisoned")
            .entry(k)
            .or_default()
            .clone()
    }

    /// The running-maximum gauge `name` (no labels).
    pub fn max_gauge(&self, name: &str) -> Arc<MaxGauge> {
        let k = key(name, &[]);
        if let Some(m) = self.maxes.read().expect("metrics poisoned").get(&k) {
            return m.clone();
        }
        self.maxes
            .write()
            .expect("metrics poisoned")
            .entry(k)
            .or_default()
            .clone()
    }

    /// The latency histogram `name` (no labels, default buckets).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// The latency histogram `name` with `labels` (default buckets).
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let k = key(name, labels);
        if let Some(h) = self.histograms.read().expect("metrics poisoned").get(&k) {
            return h.clone();
        }
        self.histograms
            .write()
            .expect("metrics poisoned")
            .entry(k)
            .or_insert_with(|| Arc::new(Histogram::latency()))
            .clone()
    }

    /// Prometheus-style text exposition: counters, gauges, maxima
    /// (rendered as gauges), then histograms, each series sorted by
    /// `(name, labels)`. Deterministic for deterministic updates, which
    /// is what makes it snapshot-testable.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        let mut last_type_line = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let line = format!("# TYPE {name} {kind}\n");
            if line != last_type_line {
                out.push_str(&line);
                last_type_line = line;
            }
        };
        for ((name, labels), c) in self.counters.read().expect("metrics poisoned").iter() {
            type_line(&mut out, name, "counter");
            out.push_str(&format!("{name}{} {}\n", render_labels(labels), c.get()));
        }
        for ((name, labels), g) in self.gauges.read().expect("metrics poisoned").iter() {
            type_line(&mut out, name, "gauge");
            out.push_str(&format!("{name}{} {}\n", render_labels(labels), g.get()));
        }
        for ((name, labels), m) in self.maxes.read().expect("metrics poisoned").iter() {
            type_line(&mut out, name, "gauge");
            let v = m
                .get()
                .map(|v| format!("{v:.6}"))
                .unwrap_or_else(|| "0".to_string());
            out.push_str(&format!("{name}{} {v}\n", render_labels(labels), v = v));
        }
        for ((name, labels), h) in self.histograms.read().expect("metrics poisoned").iter() {
            type_line(&mut out, name, "histogram");
            for (bound, cum) in h.cumulative_buckets() {
                let le = if bound.is_infinite() {
                    "+Inf".to_string()
                } else {
                    format!("{bound}")
                };
                let mut labels = labels.clone();
                labels.push(("le".to_string(), le));
                out.push_str(&format!("{name}_bucket{} {cum}\n", render_labels(&labels)));
            }
            out.push_str(&format!(
                "{name}_sum{} {:.6}\n",
                render_labels(labels),
                h.sum()
            ));
            out.push_str(&format!(
                "{name}_count{} {}\n",
                render_labels(labels),
                h.count()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let m = Metrics::new();
        m.counter("sj_q_total").add(3);
        m.counter("sj_q_total").inc();
        assert_eq!(m.counter("sj_q_total").get(), 4);
        m.gauge("sj_depth").set(7);
        m.gauge("sj_depth").add(-2);
        assert_eq!(m.gauge("sj_depth").get(), 5);
        m.counter_with("sj_q_total", &[("class", "join")]).inc();
        assert_eq!(m.counter_with("sj_q_total", &[("class", "join")]).get(), 1);
        // The unlabeled series is distinct from the labeled one.
        assert_eq!(m.counter("sj_q_total").get(), 4);
    }

    #[test]
    fn max_gauge_ignores_nan() {
        let g = MaxGauge::default();
        assert_eq!(g.get(), None);
        g.observe(2.5);
        g.observe(17.0);
        g.observe(1.0);
        assert_eq!(g.get(), Some(17.0));
        // Junk must not poison the maximum: NaN's bit pattern compares
        // greater than every finite value's.
        g.observe(f64::NAN);
        g.observe(f64::INFINITY);
        g.observe(f64::NEG_INFINITY);
        g.observe(-3.0);
        g.observe(0.0);
        assert_eq!(g.get(), Some(17.0));
        g.observe(21.0);
        assert_eq!(g.get(), Some(21.0));
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::new(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 0.5, 1.5, 1.5, 3.0, 3.0, 3.0, 3.0, 8.0, 8.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        assert!((h.sum() - 32.0).abs() < 1e-6);
        // rank 5 = 50th pct falls in the (2,4] bucket.
        let p50 = h.p50().unwrap();
        assert!((2.0..=4.0).contains(&p50), "{p50}");
        // Overflow-bucket quantiles report the last finite bound.
        assert_eq!(h.p99(), Some(4.0));
        // Junk ignored.
        h.observe(f64::NAN);
        h.observe(-1.0);
        assert_eq!(h.count(), 10);
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[3], (f64::INFINITY, 10));
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1), "cumulative");
    }

    #[test]
    fn exposition_is_deterministic_and_complete() {
        let m = Metrics::new();
        m.counter_with("sj_queries_total", &[("class", "join")])
            .add(2);
        m.counter_with("sj_queries_total", &[("class", "division")])
            .add(5);
        m.gauge("sj_sessions").set(3);
        m.max_gauge("sj_max_q_error").observe(4.5);
        let h = m.histogram("sj_query_seconds");
        h.observe(0.0001);
        h.observe(0.003);
        let text = m.expose();
        let again = m.expose();
        assert_eq!(text, again, "deterministic");
        assert!(text.contains("# TYPE sj_queries_total counter"));
        assert!(text.contains("sj_queries_total{class=\"division\"} 5"));
        assert!(text.contains("sj_queries_total{class=\"join\"} 2"));
        assert!(text.contains("sj_sessions 3"));
        assert!(text.contains("sj_max_q_error 4.500000"));
        assert!(text.contains("sj_query_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("sj_query_seconds_count 2"));
        // Division sorts before join: label sets are ordered.
        let d = text.find("class=\"division\"").unwrap();
        let j = text.find("class=\"join\"").unwrap();
        assert!(d < j);
    }
}
