//! E8 — the classical RA division plans across scales: every one of them
//! must go quadratic (Proposition 26); measured as wall-clock here and as
//! exact intermediate sizes in the `experiments` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::division;
use sj_eval::evaluate;
use sj_workload::adversarial_division_series;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scales = [32usize, 64, 128, 256];
    let series = adversarial_division_series(&scales, 0xE8);
    let mut group = c.benchmark_group("division_ra_quadratic");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (scale, db) in scales.iter().zip(&series) {
        for (name, plan) in [
            (
                "double_difference",
                division::division_double_difference("R", "S"),
            ),
            ("via_join", division::division_via_join("R", "S")),
            ("equality", division::division_equality("R", "S")),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, scale),
                &(&plan, db),
                |b, (plan, db)| b.iter(|| evaluate(plan, db).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
