//! Set joins `R(A,B) ⋈_{B θ D} S(C,D)`: relate A-values and C-values by a
//! predicate on their associated value *sets* (the paper's introduction,
//! after [17, 18]).
//!
//! Supported predicates: `⊇` (set-containment join), `⊆`, `=`
//! (set-equality join) and `∩ ≠ ∅` — the last one, as the paper remarks,
//! "boils down to an ordinary equijoin".
//!
//! Algorithms:
//!
//! * [`nested_loop_set_join`] — compare every group pair; the baseline.
//!   For set-containment joins the paper notes that nothing asymptotically
//!   better than quadratic is known.
//! * [`signature_set_join`] — 64-bit Bloom-style signatures per group
//!   prune non-candidates before an exact sorted-merge verification
//!   (Helmer–Moerkotte / Ramasamy et al. style). Same worst case, large
//!   constant-factor wins on selective inputs.
//! * [`hash_set_equality_join`] — set-equality join by hashing each
//!   group's canonical B-list: O(n log n) + output, the strategy behind
//!   footnote 1 of the paper.
//! * [`intersect_join_via_equijoin`] — the `∩ ≠ ∅` predicate executed as
//!   `π_{A,C}(R ⋈_{B=D} S)`, witnessing the paper's remark.

use sj_storage::hash::fx_hash_one;
use sj_storage::{FxHashMap, Relation, Tuple, Value};

/// The set predicate of a set join.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum SetPredicate {
    /// `B-set ⊇ D-set` — the set-containment join of Fig. 1.
    Contains,
    /// `B-set ⊆ D-set`.
    ContainedIn,
    /// `B-set = D-set` — the set-equality join.
    Equals,
    /// `B-set ∩ D-set ≠ ∅` — an ordinary equijoin in disguise.
    IntersectsNonempty,
}

/// Group a binary relation into `(key, sorted value list)` pairs, in key
/// order. Canonical relation order makes this a single pass.
pub fn group_sets(r: &Relation) -> Vec<(Value, Vec<Value>)> {
    assert_eq!(r.arity(), 2, "set-join operands must be binary");
    let mut out: Vec<(Value, Vec<Value>)> = Vec::new();
    for t in r {
        match out.last_mut() {
            Some((k, vs)) if *k == t[0] => vs.push(t[1].clone()),
            _ => out.push((t[0].clone(), vec![t[1].clone()])),
        }
    }
    out
}

/// Is sorted `sub` a subset of sorted `sup`? (Merge scan.)
fn sorted_subset(sub: &[Value], sup: &[Value]) -> bool {
    let mut i = 0;
    for v in sub {
        while i < sup.len() && sup[i] < *v {
            i += 1;
        }
        if i >= sup.len() || sup[i] != *v {
            return false;
        }
        i += 1;
    }
    true
}

/// Exact predicate check on two sorted value lists (crate-internal API
/// shared with the wide-signature variant).
pub(crate) fn predicate_holds_public(pred: SetPredicate, b: &[Value], d: &[Value]) -> bool {
    predicate_holds(pred, b, d)
}

fn predicate_holds(pred: SetPredicate, b: &[Value], d: &[Value]) -> bool {
    match pred {
        SetPredicate::Contains => sorted_subset(d, b),
        SetPredicate::ContainedIn => sorted_subset(b, d),
        SetPredicate::Equals => b == d,
        SetPredicate::IntersectsNonempty => {
            let (mut i, mut j) = (0, 0);
            while i < b.len() && j < d.len() {
                match b[i].cmp(&d[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => return true,
                }
            }
            false
        }
    }
}

/// Set join by the default strategy: hash for `Equals`, equijoin for
/// `IntersectsNonempty`, signatures otherwise.
///
/// Thin wrapper kept for convenience; algorithm-aware callers should go
/// through [`crate::registry::Registry`] (or `sj-eval`'s `Engine`), where
/// the choice is configuration and the `auto` selector also consults
/// input statistics.
pub fn set_join(r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
    match pred {
        SetPredicate::Equals => hash_set_equality_join(r, s),
        SetPredicate::IntersectsNonempty => intersect_join_via_equijoin(r, s),
        _ => signature_set_join(r, s, pred),
    }
}

/// Nested-loop set join: every (A-group, C-group) pair verified exactly.
pub fn nested_loop_set_join(r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
    let rg = group_sets(r);
    let sg = group_sets(s);
    let mut out = Vec::new();
    for (a, b_set) in &rg {
        for (c, d_set) in &sg {
            if predicate_holds(pred, b_set, d_set) {
                out.push(Tuple::new(vec![a.clone(), c.clone()]));
            }
        }
    }
    Relation::from_tuples(2, out).expect("binary output")
}

/// 64-bit superset signature of a value list: the OR of one hash bit per
/// element. `sig(X) bits ⊆ sig(Y) bits` is necessary for `X ⊆ Y`.
pub fn signature(values: &[Value]) -> u64 {
    values
        .iter()
        .fold(0u64, |acc, v| acc | (1u64 << (fx_hash_one(v) % 64)))
}

/// Signature-filtered set join: compare 64-bit signatures first (a single
/// AND/compare), verify survivors with the exact merge test. Worst case
/// quadratic — as the paper notes, no better bound is known for
/// containment — but the filter removes most pairs on selective inputs.
///
/// When both element columns are dense (all-integer or all-string), the
/// work runs on the columnar view — zero-copy group slices, a dense u64
/// signature fold, and `i64`/dictionary-code verification merges (see
/// [`crate::columnar`]). Mixed-variant columns fall back to the
/// row-wise [`signature_set_join_rowwise`]. Output is identical either
/// way.
pub fn signature_set_join(r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
    if let Some(out) = crate::columnar::columnar_signature_set_join(r, s, pred) {
        return out;
    }
    signature_set_join_rowwise(r, s, pred)
}

/// The row-wise signature set join: groups materialized as
/// `(key, Vec<Value>)`, signatures hashed per `Value`. Kept public as
/// the differential baseline for the columnar path and for benchmarks.
pub fn signature_set_join_rowwise(r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
    let rg = group_sets(r);
    let sg = group_sets(s);
    let rsig: Vec<u64> = rg.iter().map(|(_, vs)| signature(vs)).collect();
    let ssig: Vec<u64> = sg.iter().map(|(_, vs)| signature(vs)).collect();
    let mut out = Vec::new();
    for ((a, b_set), &sb) in rg.iter().zip(&rsig) {
        for ((c, d_set), &sd) in sg.iter().zip(&ssig) {
            let may = match pred {
                SetPredicate::Contains => sd & !sb == 0,
                SetPredicate::ContainedIn => sb & !sd == 0,
                SetPredicate::Equals => sb == sd,
                SetPredicate::IntersectsNonempty => sb & sd != 0 || b_set.is_empty(),
            };
            if may && predicate_holds(pred, b_set, d_set) {
                out.push(Tuple::new(vec![a.clone(), c.clone()]));
            }
        }
    }
    Relation::from_tuples(2, out).expect("binary output")
}

/// Set-equality join via hashing each group's canonical (sorted) value
/// list: build a table from `S`'s groups, probe with `R`'s groups.
/// O(n log n) time plus output size — the "sorting or counting tricks"
/// strategy of footnote 1.
pub fn hash_set_equality_join(r: &Relation, s: &Relation) -> Relation {
    let rg = group_sets(r);
    let sg = group_sets(s);
    let mut table: FxHashMap<&[Value], Vec<&Value>> = FxHashMap::default();
    for (c, d_set) in &sg {
        table.entry(d_set.as_slice()).or_default().push(c);
    }
    let mut out = Vec::new();
    for (a, b_set) in &rg {
        if let Some(cs) = table.get(b_set.as_slice()) {
            for c in cs {
                out.push(Tuple::new(vec![a.clone(), (*c).clone()]));
            }
        }
    }
    Relation::from_tuples(2, out).expect("binary output")
}

/// The `∩ ≠ ∅` set join as an ordinary equijoin — the paper's remark made
/// executable: `π_{A,C}(R ⋈_{B=D} S)` with duplicates removed by set
/// semantics.
pub fn intersect_join_via_equijoin(r: &Relation, s: &Relation) -> Relation {
    assert_eq!(r.arity(), 2);
    assert_eq!(s.arity(), 2);
    // Hash join on B = D, projecting (A, C) immediately.
    let mut by_d: FxHashMap<&Value, Vec<&Value>> = FxHashMap::default();
    for t in s {
        by_d.entry(&t[1]).or_default().push(&t[0]);
    }
    let mut out = Vec::new();
    for t in r {
        if let Some(cs) = by_d.get(&t[1]) {
            for c in cs {
                out.push(Tuple::new(vec![t[0].clone(), (*c).clone()]));
            }
        }
    }
    Relation::from_tuples(2, out).expect("binary output")
}

#[cfg(test)]
mod tests {
    use super::*;
    use SetPredicate::*;

    /// Fig. 1 of the paper.
    fn person() -> Relation {
        Relation::from_str_rows(&[
            &["An", "headache"],
            &["An", "sore throat"],
            &["An", "neck pain"],
            &["Bob", "headache"],
            &["Bob", "sore throat"],
            &["Bob", "memory loss"],
            &["Bob", "neck pain"],
            &["Carol", "headache"],
        ])
    }

    fn disease() -> Relation {
        Relation::from_str_rows(&[
            &["flu", "headache"],
            &["flu", "sore throat"],
            &["Lyme", "headache"],
            &["Lyme", "sore throat"],
            &["Lyme", "memory loss"],
            &["Lyme", "neck pain"],
        ])
    }

    #[test]
    fn fig1_set_containment_join() {
        // Person ⋈_{Symptom ⊇ Symptom} Disease = {(An,flu),(Bob,flu),(Bob,Lyme)}.
        let want = Relation::from_str_rows(&[&["An", "flu"], &["Bob", "flu"], &["Bob", "Lyme"]]);
        assert_eq!(nested_loop_set_join(&person(), &disease(), Contains), want);
        assert_eq!(signature_set_join(&person(), &disease(), Contains), want);
        assert_eq!(set_join(&person(), &disease(), Contains), want);
    }

    #[test]
    fn all_predicates_agree_between_algorithms() {
        let r = Relation::from_int_rows(&[
            &[1, 10],
            &[1, 11],
            &[2, 10],
            &[3, 12],
            &[3, 13],
            &[4, 10],
            &[4, 11],
        ]);
        let s = Relation::from_int_rows(&[&[5, 10], &[5, 11], &[6, 10], &[7, 13], &[8, 20]]);
        for pred in [Contains, ContainedIn, Equals, IntersectsNonempty] {
            let naive = nested_loop_set_join(&r, &s, pred);
            assert_eq!(
                signature_set_join(&r, &s, pred),
                naive,
                "signature vs naive on {pred:?}"
            );
            assert_eq!(
                set_join(&r, &s, pred),
                naive,
                "default vs naive on {pred:?}"
            );
        }
        assert_eq!(
            hash_set_equality_join(&r, &s),
            nested_loop_set_join(&r, &s, Equals)
        );
        assert_eq!(
            intersect_join_via_equijoin(&r, &s),
            nested_loop_set_join(&r, &s, IntersectsNonempty)
        );
    }

    #[test]
    fn equality_join_matches_groups_exactly() {
        let r = Relation::from_int_rows(&[&[1, 10], &[1, 11], &[2, 10]]);
        let s = Relation::from_int_rows(&[&[5, 10], &[5, 11], &[6, 10], &[7, 11]]);
        assert_eq!(
            hash_set_equality_join(&r, &s),
            Relation::from_int_rows(&[&[1, 5], &[2, 6]])
        );
    }

    #[test]
    fn containment_join_agrees_with_ra_plan() {
        use sj_eval::evaluate;
        let r = person();
        let s = disease();
        let mut db = sj_storage::Database::new();
        db.set("R", r.clone());
        db.set("S", s.clone());
        let plan = sj_algebra::division::set_containment_join_plan("R", "S");
        assert_eq!(
            evaluate(&plan, &db).unwrap(),
            nested_loop_set_join(&r, &s, Contains)
        );
        let eq_plan = sj_algebra::division::set_equality_join_plan("R", "S");
        assert_eq!(
            evaluate(&eq_plan, &db).unwrap(),
            nested_loop_set_join(&r, &s, Equals)
        );
    }

    #[test]
    fn group_sets_groups_in_order() {
        let r = Relation::from_int_rows(&[&[2, 9], &[1, 7], &[1, 8]]);
        let g = group_sets(&r);
        assert_eq!(g.len(), 2);
        assert_eq!(g[0].0, Value::int(1));
        assert_eq!(g[0].1, vec![Value::int(7), Value::int(8)]);
        assert_eq!(g[1].1, vec![Value::int(9)]);
    }

    #[test]
    fn signature_is_superset_monotone() {
        let small = vec![Value::int(1), Value::int(2)];
        let big = vec![Value::int(1), Value::int(2), Value::int(3)];
        let (ss, sb) = (signature(&small), signature(&big));
        assert_eq!(ss & !sb, 0, "subset signature must be covered");
    }

    #[test]
    fn empty_operands() {
        let e = Relation::empty(2);
        let r = Relation::from_int_rows(&[&[1, 10]]);
        for pred in [Contains, ContainedIn, Equals, IntersectsNonempty] {
            assert!(nested_loop_set_join(&e, &r, pred).is_empty());
            assert!(nested_loop_set_join(&r, &e, pred).is_empty());
            assert!(signature_set_join(&e, &e, pred).is_empty());
        }
    }

    #[test]
    fn sorted_subset_edge_cases() {
        let empty: Vec<Value> = vec![];
        let one = vec![Value::int(5)];
        assert!(sorted_subset(&empty, &one));
        assert!(sorted_subset(&empty, &empty));
        assert!(!sorted_subset(&one, &empty));
        assert!(sorted_subset(&one, &one));
    }
}
