//! C-stored tuples — Definition 4 of the paper.
//!
//! A tuple `d̄` is *C-stored* in `D` if the tuple obtained by deleting all
//! values in `C` from `d̄` belongs to some projection `π_{i₁,…,i_p}(D(R))`.
//! Since the projection list is arbitrary (repeats and reorderings
//! allowed), this is equivalent to: the non-constant values of `d̄` all
//! occur within a *single* stored tuple — i.e. they form a subset of a
//! guarded set. SA= expressions with constants in `C` can only output
//! C-stored tuples, which is why the GF → SA= direction of Theorem 8 is
//! stated relative to them.

use sj_storage::{Database, Tuple, Value};

/// Is `t` C-stored in `db` (Definition 4)?
pub fn is_c_stored(db: &Database, t: &Tuple, constants: &[Value]) -> bool {
    let residual: Vec<&Value> = t.iter().filter(|v| !constants.contains(v)).collect();
    if residual.is_empty() {
        // The empty tuple lies in the nullary projection π() (D(R)) of any
        // nonempty relation.
        return db.iter().any(|(_, r)| !r.is_empty());
    }
    db.iter().any(|(_, rel)| {
        rel.iter()
            .any(|stored| residual.iter().all(|v| stored.iter().any(|w| w == *v)))
    })
}

/// Enumerate **all** C-stored `k`-tuples of `db`, sorted and deduplicated.
///
/// Every C-stored k-tuple draws its values from `set(t) ∪ C` for some
/// stored tuple `t`, so we enumerate those products. Exponential in `k` —
/// intended for tests and paper-scale figures, not for large databases.
pub fn all_c_stored_tuples(db: &Database, k: usize, constants: &[Value]) -> Vec<Tuple> {
    let mut out: Vec<Tuple> = Vec::new();
    if k == 0 {
        if db.iter().any(|(_, r)| !r.is_empty()) {
            out.push(Tuple::empty());
        }
        return out;
    }
    for stored in db.tuple_space_set() {
        let mut pool: Vec<Value> = stored.value_set();
        for c in constants {
            if !pool.contains(c) {
                pool.push(c.clone());
            }
        }
        // k-fold product over the pool.
        let mut idx = vec![0usize; k];
        loop {
            out.push(idx.iter().map(|&i| pool[i].clone()).collect());
            let mut pos = k;
            let mut done = false;
            loop {
                if pos == 0 {
                    done = true;
                    break;
                }
                pos -= 1;
                idx[pos] += 1;
                if idx[pos] < pool.len() {
                    break;
                }
                idx[pos] = 0;
            }
            if done {
                break;
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::{tuple, Relation};

    /// The database of Fig. 2 / Example 5: R, S ternary, T binary.
    fn fig2() -> Database {
        let mut d = Database::new();
        d.set(
            "R",
            Relation::from_str_rows(&[&["a", "b", "c"], &["d", "e", "f"]]),
        );
        d.set("S", Relation::from_str_rows(&[&["d", "a", "b"]]));
        d.set("T", Relation::from_str_rows(&[&["e", "a"], &["f", "c"]]));
        d
    }

    #[test]
    fn example5_exactly_as_in_paper() {
        let db = fig2();
        let c = [Value::str("a")];
        // (b, c) is C-stored: (b, c) ∈ π₂,₃(D(R)).
        assert!(is_c_stored(&db, &tuple!["b", "c"], &c));
        // (a, f) is C-stored: deleting a leaves (f) ∈ π₁(D(T)).
        assert!(is_c_stored(&db, &tuple!["a", "f"], &c));
        // (e, c) and (g) are not C-stored.
        assert!(!is_c_stored(&db, &tuple!["e", "c"], &c));
        assert!(!is_c_stored(&db, &tuple!["g"], &c));
    }

    #[test]
    fn all_constant_tuple_stored_iff_db_nonempty() {
        let db = fig2();
        let c = [Value::str("a")];
        assert!(is_c_stored(&db, &tuple!["a", "a"], &c));
        let empty = Database::new();
        assert!(!is_c_stored(&empty, &tuple!["a"], &c));
        let mut empty_rels = Database::new();
        empty_rels.set("R", Relation::empty(2));
        assert!(!is_c_stored(&empty_rels, &tuple!["a"], &c));
    }

    #[test]
    fn enumeration_matches_predicate() {
        let db = fig2();
        let c = [Value::str("a")];
        for k in 0..=2 {
            let all = all_c_stored_tuples(&db, k, &c);
            // Everything enumerated is C-stored.
            for t in &all {
                assert!(is_c_stored(&db, t, &c), "{t:?}");
            }
            // Everything C-stored over the domain ∪ C is enumerated.
            let mut pool = db.active_domain();
            pool.push(Value::str("g")); // sentinel outside
            if k == 2 {
                for x in &pool {
                    for y in &pool {
                        let t = Tuple::new(vec![x.clone(), y.clone()]);
                        assert_eq!(all.contains(&t), is_c_stored(&db, &t, &c), "{t:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn nullary_enumeration() {
        let db = fig2();
        assert_eq!(all_c_stored_tuples(&db, 0, &[]), vec![Tuple::empty()]);
        let empty = Database::new();
        assert!(all_c_stored_tuples(&empty, 0, &[]).is_empty());
    }

    #[test]
    fn stored_tuples_themselves_are_stored() {
        let db = fig2();
        for t in db.tuple_space_set() {
            assert!(is_c_stored(&db, &t, &[]));
        }
    }
}
