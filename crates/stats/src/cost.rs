//! The cost model: complexity classes priced in concrete work units.
//!
//! Definition 16 of the paper classifies expressions by the asymptotic
//! growth of their largest intermediate; [`ComplexityClass`] carries
//! that classification for the direct algorithms (it lives here, at the
//! bottom of the dependency graph, so both the `sj-setjoin` registry
//! and the planner can speak it). A complexity class alone cannot rank
//! two linear algorithms, so [`CostModel`] refines it into a scalar
//! **estimated cost** in abstract *tuple-operation units*: one unit ≈
//! touching one tuple in a tight merge scan (a handful of nanoseconds
//! on current hardware). The per-operation constants were calibrated
//! against the measured medians in `results/division_shootout.csv` and
//! `results/setjoin_shootout.csv`; `experiments -- cost` re-validates
//! the calibration against fresh measurements on every run.

use std::fmt;

/// Asymptotic running-time class of an algorithm, in the spirit of
/// Definition 16 of the paper (which classifies *expressions* by the
/// growth of their largest intermediate; for direct algorithms the
/// analogous measure is total work in the input size `n`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum ComplexityClass {
    /// `O(n)` (possibly expected, for hash-based algorithms) plus output.
    Linear,
    /// `O(n log n)` plus output — the "sorting or counting tricks" of the
    /// paper's footnote 1.
    Quasilinear,
    /// `Ω(n²)` worst case — the class Proposition 26 proves unavoidable
    /// for division *inside* RA, and the best known bound for
    /// set-containment joins.
    Quadratic,
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplexityClass::Linear => write!(f, "O(n)"),
            ComplexityClass::Quasilinear => write!(f, "O(n log n)"),
            ComplexityClass::Quadratic => write!(f, "O(n²)"),
        }
    }
}

/// Unit costs for the primitive operations the algorithms are built
/// from, in tuple-operation units (see the module docs). All fields are
/// public so experiments can ablate single constants.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Touching one tuple in a tight sequential scan or merge.
    pub tuple_pass: f64,
    /// Hashing a value and touching a hash-table slot (build or probe).
    pub hash_op: f64,
    /// Fixed cost of setting up per-operator hash machinery
    /// (allocating tables, signatures).
    pub setup: f64,
    /// Fixed cost of partition bookkeeping (postings index, partition
    /// vectors, result merge) beyond the per-tuple passes.
    pub partition_setup: f64,
    /// Spawning and joining one scoped worker thread. Dominant for
    /// small inputs — tens of microseconds, i.e. thousands of tuple
    /// units — which is what makes parallel variants lose at low scale.
    pub spawn: f64,
    /// One 64-bit signature containment/equality test on a candidate
    /// pair.
    pub sig_test: f64,
    /// Comparing one element during exact set-predicate verification.
    pub verify: f64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            tuple_pass: 1.0,
            hash_op: 1.8,
            setup: 200.0,
            partition_setup: 500.0,
            spawn: 4000.0,
            sig_test: 0.28,
            verify: 1.0,
        }
    }
}

/// Number of unit constants in a [`CostModel`].
pub const COST_PARAMS: usize = 7;

/// The constants' names, in [`CostModel::to_array`] order.
pub const COST_PARAM_NAMES: [&str; COST_PARAMS] = [
    "tuple_pass",
    "hash_op",
    "setup",
    "partition_setup",
    "spawn",
    "sig_test",
    "verify",
];

impl CostModel {
    /// The constants as a fixed-order array (see [`COST_PARAM_NAMES`]).
    /// The registry's cost formulas are *linear* in these constants,
    /// which is what lets [`crate::Calibrator`] refit them from
    /// measured runtimes by least squares.
    pub fn to_array(&self) -> [f64; COST_PARAMS] {
        [
            self.tuple_pass,
            self.hash_op,
            self.setup,
            self.partition_setup,
            self.spawn,
            self.sig_test,
            self.verify,
        ]
    }

    /// Rebuild a model from [`CostModel::to_array`] order.
    pub fn from_array(a: [f64; COST_PARAMS]) -> CostModel {
        CostModel {
            tuple_pass: a[0],
            hash_op: a[1],
            setup: a[2],
            partition_setup: a[3],
            spawn: a[4],
            sig_test: a[5],
            verify: a[6],
        }
    }

    /// The generic class→cost mapping: price `n` input tuples at the
    /// given [`ComplexityClass`]. This is the fallback the registry's
    /// cost-based selector uses for algorithms it has no refined
    /// formula for (e.g. user-registered ones) — the complexity class
    /// is the only thing the [`ComplexityClass`]-carrying traits
    /// guarantee.
    pub fn class_cost(&self, class: ComplexityClass, n: f64) -> f64 {
        let n = n.max(0.0);
        self.tuple_pass
            * match class {
                ComplexityClass::Linear => n,
                ComplexityClass::Quasilinear => n * (n + 1.0).log2(),
                ComplexityClass::Quadratic => n * n,
            }
    }

    /// Should a partition-parallel binary plan node (hash/merge
    /// join or semijoin) be partitioned across `workers` threads, given
    /// the operands' actual cardinalities? Compares the partitioning
    /// overhead (per-worker spawn plus one partitioning pass over both
    /// inputs) against the work the extra workers take over
    /// (`(1 − 1/w)` of a hash build/probe pass).
    pub fn parallel_node_worthwhile(&self, left: usize, right: usize, workers: usize) -> bool {
        if workers <= 1 {
            return false;
        }
        let n = (left + right) as f64;
        let overhead = self.spawn * workers as f64 + self.tuple_pass * n;
        // A hash join/semijoin pass costs about one hash op plus one
        // tuple pass per input tuple; workers take over all but 1/w of
        // it.
        let saved = (self.hash_op + self.tuple_pass) * n * (1.0 - 1.0 / workers as f64);
        saved > overhead
    }

    /// Is a hash build worth it for a binary operator node over inputs
    /// of the given estimated combined size, versus a filtered nested
    /// loop? The break-even sits where the quadratic pair scan
    /// overtakes table setup plus per-tuple hashing.
    pub fn hash_worthwhile(&self, est_left: f64, est_right: f64) -> bool {
        let nested = self.tuple_pass * (est_left * est_right).max(0.0);
        let hashed = self.setup + self.hash_op * (est_left + est_right).max(0.0);
        nested > hashed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complexity_classes_render_and_order() {
        assert_eq!(ComplexityClass::Linear.to_string(), "O(n)");
        assert_eq!(ComplexityClass::Quasilinear.to_string(), "O(n log n)");
        assert_eq!(ComplexityClass::Quadratic.to_string(), "O(n²)");
        assert!(ComplexityClass::Linear < ComplexityClass::Quasilinear);
        assert!(ComplexityClass::Quasilinear < ComplexityClass::Quadratic);
    }

    #[test]
    fn class_cost_is_monotone_in_class_and_size() {
        let m = CostModel::default();
        for n in [10.0, 1000.0, 1e6] {
            assert!(
                m.class_cost(ComplexityClass::Linear, n)
                    < m.class_cost(ComplexityClass::Quasilinear, n)
            );
            assert!(
                m.class_cost(ComplexityClass::Quasilinear, n)
                    < m.class_cost(ComplexityClass::Quadratic, n)
            );
        }
        assert!(
            m.class_cost(ComplexityClass::Linear, 100.0)
                < m.class_cost(ComplexityClass::Linear, 200.0)
        );
        assert_eq!(m.class_cost(ComplexityClass::Quadratic, 0.0), 0.0);
    }

    #[test]
    fn parallel_gate_needs_scale_and_workers() {
        let m = CostModel::default();
        assert!(!m.parallel_node_worthwhile(1 << 20, 1 << 20, 1));
        assert!(!m.parallel_node_worthwhile(100, 100, 4), "tiny input");
        assert!(m.parallel_node_worthwhile(1 << 20, 1 << 20, 4));
        // More workers raise the spawn bill, so the break-even moves up.
        let n = 20_000usize;
        assert!(m.parallel_node_worthwhile(n, n, 4));
        assert!(!m.parallel_node_worthwhile(2_000, 2_000, 8));
    }

    #[test]
    fn hash_gate() {
        let m = CostModel::default();
        assert!(!m.hash_worthwhile(5.0, 5.0), "25 pairs < table setup");
        assert!(m.hash_worthwhile(100.0, 100.0));
    }
}
