//! Distinguishing formulas vs the bisimulation solver: the two sides of
//! Proposition 13, checked against each other on the paper's databases and
//! on random pairs.

use setjoins::prelude::*;
use sj_bisim::are_bisimilar;
use sj_logic::{distinguishing_formula, satisfies, Assignment};
use sj_workload::{figures, random_database};

fn env_of(vars: &[String], t: &Tuple) -> Assignment {
    vars.iter().cloned().zip(t.iter().cloned()).collect()
}

#[test]
fn fig5_pair_has_no_distinguishing_formula() {
    let (a, b) = (figures::fig5_a(), figures::fig5_b());
    assert!(are_bisimilar(&a, &tuple![1], &b, &tuple![1], &[]).is_some());
    for depth in 0..=3 {
        assert!(
            distinguishing_formula(&a, &tuple![1], &b, &tuple![1], &[], depth).is_none(),
            "depth {depth}"
        );
    }
}

#[test]
fn fig6_pair_has_no_distinguishing_formula() {
    let (a, b) = (figures::fig6_a(), figures::fig6_b());
    for depth in 0..=3 {
        assert!(
            distinguishing_formula(&a, &tuple!["alex"], &b, &tuple!["alex"], &[], depth).is_none()
        );
    }
}

#[test]
fn non_bisimilar_fig3_tuples_distinguished() {
    // (1,2) in A is an S-tuple; (7,8) in B is not: depth 0 suffices, and
    // the formula verifies.
    let (a, b) = (figures::fig3_a(), figures::fig3_b());
    assert!(are_bisimilar(&a, &tuple![1, 2], &b, &tuple![7, 8], &[]).is_none());
    let (f, vars) = distinguishing_formula(&a, &tuple![1, 2], &b, &tuple![7, 8], &[], 2)
        .expect("non-bisimilar pair must be distinguishable");
    assert!(f.check_guarded().is_ok());
    assert!(satisfies(&a, &f, &env_of(&vars, &tuple![1, 2])));
    assert!(!satisfies(&b, &f, &env_of(&vars, &tuple![7, 8])));
}

#[test]
fn solver_and_formula_search_agree_on_random_pairs() {
    // For random database pairs and stored tuples: if the solver says
    // bisimilar, no formula may be found (any depth); if a formula is
    // found, it must verify and the solver must say non-bisimilar.
    let mut checked_formulas = 0;
    let mut checked_bisimilar = 0;
    for seed in 0..12u64 {
        let a = random_database(seed, 4, 4);
        let b = random_database(seed + 100, 4, 4);
        let ta = a.tuple_space_set();
        let tb = b.tuple_space_set();
        for x in ta.iter().take(2) {
            for y in tb.iter().take(2) {
                if x.arity() != y.arity() {
                    continue;
                }
                let bisim = are_bisimilar(&a, x, &b, y, &[]).is_some();
                let found = distinguishing_formula(&a, x, &b, y, &[], 2);
                match (bisim, found) {
                    (true, Some((f, _))) => {
                        panic!("bisimilar pair {x}/{y} distinguished by {f}")
                    }
                    (false, Some((f, vars))) => {
                        assert!(f.check_guarded().is_ok(), "{f}");
                        assert!(satisfies(&a, &f, &env_of(&vars, x)), "{f} fails at A,{x}");
                        assert!(!satisfies(&b, &f, &env_of(&vars, y)), "{f} holds at B,{y}");
                        checked_formulas += 1;
                    }
                    (true, None) => checked_bisimilar += 1,
                    // Non-bisimilar but depth 2 insufficient: allowed.
                    (false, None) => {}
                }
            }
        }
    }
    // Independent random pairs are rarely bisimilar; guarantee coverage of
    // the bisimilar case with order-shifted isomorphic copies.
    for seed in 0..4u64 {
        let a = random_database(seed, 4, 4);
        let b = a.map_values(|v| match v {
            Value::Int(i) => Value::int(i + 50),
            other => other.clone(),
        });
        for x in a.tuple_space_set().iter().take(2) {
            let y: Tuple = x
                .iter()
                .map(|v| match v {
                    Value::Int(i) => Value::int(i + 50),
                    other => other.clone(),
                })
                .collect();
            assert!(are_bisimilar(&a, x, &b, &y, &[]).is_some());
            for depth in 0..=2 {
                assert!(
                    distinguishing_formula(&a, x, &b, &y, &[], depth).is_none(),
                    "shifted copy of {x} distinguished at depth {depth}"
                );
            }
            checked_bisimilar += 1;
        }
    }
    assert!(
        checked_formulas > 0,
        "the random family never produced a distinguishable pair"
    );
    assert!(checked_bisimilar > 0);
}
