//! The physical planner: logical `Expr` trees lowered to a memoized
//! operator DAG.
//!
//! The paper's dichotomy (Theorem 17) is about intermediate *sizes*, but a
//! tree-walking evaluator also wastes *constants* wherever the same
//! subexpression occurs more than once: `division_double_difference`
//! mentions `R` three times and `π₁(R)` twice, and the naive evaluator
//! re-evaluates (and deep-clones) every occurrence. This module removes
//! that waste in three steps:
//!
//! 1. **Hash-consing.** Lowering walks the expression bottom-up and keys
//!    each node by [`Expr::structural_hash`] (confirmed with `==`), so
//!    structurally identical subtrees collapse into one [`PlanNode`]. The
//!    result is a DAG in which every distinct subexpression is evaluated
//!    exactly once per query.
//! 2. **Shared leaves.** Scans take an [`Arc`] handle from
//!    [`Database::get_shared`] instead of cloning the relation; all
//!    intermediate results flow through the DAG as `Arc<Relation>`, so a
//!    node consumed by several parents is never copied.
//! 3. **Physical operator choice.** Relations are stored in canonical
//!    (lexicographic) order, so when a join/semijoin's equality atoms pair
//!    an aligned column prefix (`1=1, …, k=k` — see
//!    [`ops::merge_prefix_len`]) both operands are *already sorted by the
//!    key* and the planner picks a sort-free merge join/semijoin; other
//!    equality conditions get the hash variants, and equality-free
//!    conditions fall back to filtered nested loops. Non-equality atoms
//!    ride along as residual filters, reusing the `ops` machinery.
//!
//! Entry points: [`evaluate_planned`] (drop-in replacement for
//! [`crate::evaluate`]), [`evaluate_planned_instrumented`] (returns a
//! [`PlannedReport`] with per-node operator choice, cardinality and
//! timing), and [`PhysicalPlan::explain`] (an `EXPLAIN`-style rendering of
//! the DAG with sharing annotations).

use crate::error::EvalError;
use crate::instrumented::NodeStat;
use crate::ops;
use sj_algebra::{AlgebraError, Condition, Expr, Selection};
use sj_storage::{Database, FxHashMap, Relation, Schema, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Index of a node within a [`PhysicalPlan`] (topological: children come
/// before parents, the root is the last node).
pub type NodeId = usize;

/// The physical operator executing one DAG node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysOp {
    /// Leaf scan: a shared handle to a stored relation (no copy).
    Scan(String),
    /// Set union as a linear merge of the two canonical runs.
    MergeUnion,
    /// Set difference as a linear merge.
    MergeDiff,
    /// Projection (1-based columns), with re-canonicalization.
    Project(Vec<usize>),
    /// Selection filter.
    Filter(Selection),
    /// Constant tagging.
    Tag(Value),
    /// Hash equi-join (+ residual filter) — build right, probe left.
    HashJoin(Condition),
    /// Sort-free merge join: the equality atoms pair the first `prefix`
    /// columns of both operands in order, which both canonical inputs are
    /// already sorted by.
    MergeJoin { theta: Condition, prefix: usize },
    /// Filtered nested-loop join (no equality atom to index on).
    NestedLoopJoin(Condition),
    /// Hash equi-semijoin (+ residual filter).
    HashSemijoin(Condition),
    /// Sort-free merge semijoin on an aligned key prefix.
    MergeSemijoin { theta: Condition, prefix: usize },
    /// Nested-loop semijoin (no equality atom).
    NestedLoopSemijoin(Condition),
    /// Hash grouping with a count aggregate.
    HashGroupCount(Vec<usize>),
}

impl PhysOp {
    /// Short operator name for reports and `explain` output.
    pub fn name(&self) -> &'static str {
        match self {
            PhysOp::Scan(_) => "scan",
            PhysOp::MergeUnion => "merge-union",
            PhysOp::MergeDiff => "merge-diff",
            PhysOp::Project(_) => "project",
            PhysOp::Filter(_) => "filter",
            PhysOp::Tag(_) => "tag",
            PhysOp::HashJoin(_) => "hash-join",
            PhysOp::MergeJoin { .. } => "merge-join",
            PhysOp::NestedLoopJoin(_) => "nested-loop-join",
            PhysOp::HashSemijoin(_) => "hash-semijoin",
            PhysOp::MergeSemijoin { .. } => "merge-semijoin",
            PhysOp::NestedLoopSemijoin(_) => "nested-loop-semijoin",
            PhysOp::HashGroupCount(_) => "hash-group",
        }
    }
}

/// One node of the physical DAG.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// The physical operator.
    pub op: PhysOp,
    /// Child node ids (left to right).
    pub children: Vec<NodeId>,
    /// Logical label of the subexpression this node computes
    /// ([`Expr::label`]).
    pub label: String,
    /// Output arity.
    pub arity: usize,
    /// How many times the subexpression occurs in the original tree —
    /// `> 1` means the naive evaluator would have re-evaluated it.
    pub occurrences: usize,
}

/// A lowered, hash-consed physical plan.
///
/// Nodes are stored in topological order (children before parents), so
/// execution is a single forward pass with every node evaluated exactly
/// once.
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    nodes: Vec<PlanNode>,
    root: NodeId,
    expr_nodes: usize,
}

impl PhysicalPlan {
    /// Validate `expr` against `schema` and lower it to a physical DAG.
    pub fn of(expr: &Expr, schema: &Schema) -> Result<PhysicalPlan, EvalError> {
        expr.arity(schema)?;
        let mut planner = Planner {
            schema,
            nodes: Vec::new(),
            memo: FxHashMap::default(),
        };
        let root = planner.lower(expr);
        // Occurrence counts need a full tree walk: lowering stops at the
        // first memo hit, so descendants of a shared subtree would be
        // undercounted (R under a second π₁(R) occurrence, say).
        planner.count_occurrences(expr);
        Ok(PhysicalPlan {
            nodes: planner.nodes,
            root,
            expr_nodes: expr.node_count(),
        })
    }

    /// The DAG nodes in topological order.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The root node id (always the last node).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of DAG nodes — distinct subexpressions of the query.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of nodes of the *logical* expression tree; the difference
    /// to [`PhysicalPlan::node_count`] is work the memoization saves.
    pub fn expr_node_count(&self) -> usize {
        self.expr_nodes
    }

    /// Nodes whose subexpression occurs more than once in the tree.
    pub fn shared_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.occurrences > 1).count()
    }

    /// Execute the plan. The database must conform to the schema the plan
    /// was built against; scans re-check name and arity (the cheap part)
    /// and error out on mismatch, everything else was validated at plan
    /// time.
    pub fn execute(&self, db: &Database) -> Result<Relation, EvalError> {
        let root = self.run(db, |_, _, _, _| {})?;
        Ok(Arc::try_unwrap(root).unwrap_or_else(|arc| arc.as_ref().clone()))
    }

    /// Execute with per-node instrumentation.
    pub fn execute_instrumented(&self, db: &Database) -> Result<PlannedReport, EvalError> {
        let mut nodes: Vec<NodeStat> = Vec::with_capacity(self.nodes.len());
        let root = self.run(db, |id, node: &PlanNode, rel: &Relation, elapsed| {
            nodes.push(NodeStat {
                id,
                label: node.label.clone(),
                operator: node.op.name().to_string(),
                arity: rel.arity(),
                cardinality: rel.len(),
                elapsed,
            });
        })?;
        Ok(PlannedReport {
            result: Arc::try_unwrap(root).unwrap_or_else(|arc| arc.as_ref().clone()),
            occurrences: self.nodes.iter().map(|n| n.occurrences).collect(),
            nodes,
            db_size: db.size(),
            expr_nodes: self.expr_nodes,
        })
    }

    /// One forward pass over the DAG; `observe` sees every node's output.
    ///
    /// Each intermediate is dropped as soon as its last consumer has run,
    /// so peak memory tracks the live frontier of the DAG rather than the
    /// sum of all intermediates.
    fn run(
        &self,
        db: &Database,
        mut observe: impl FnMut(NodeId, &PlanNode, &Relation, Duration),
    ) -> Result<Arc<Relation>, EvalError> {
        let mut pending_consumers = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for &c in &node.children {
                pending_consumers[c] += 1;
            }
        }
        pending_consumers[self.root] += 1; // the caller consumes the root
        let mut results: Vec<Option<Arc<Relation>>> = vec![None; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            let child = |i: usize| -> &Relation {
                results[node.children[i]]
                    .as_deref()
                    .expect("topological order: children computed first")
            };
            let start = Instant::now();
            let rel: Arc<Relation> = match &node.op {
                PhysOp::Scan(name) => {
                    let r = db.get_shared(name).ok_or_else(|| {
                        EvalError::Algebra(AlgebraError::UnknownRelation(name.clone()))
                    })?;
                    if r.arity() != node.arity {
                        return Err(EvalError::Algebra(AlgebraError::ArityMismatch {
                            left: node.arity,
                            right: r.arity(),
                        }));
                    }
                    r
                }
                PhysOp::MergeUnion => {
                    Arc::new(child(0).union(child(1)).expect("validated: arities agree"))
                }
                PhysOp::MergeDiff => Arc::new(
                    child(0)
                        .difference(child(1))
                        .expect("validated: arities agree"),
                ),
                PhysOp::Project(cols) => Arc::new(ops::project(child(0), cols)),
                PhysOp::Filter(sel) => Arc::new(ops::select(child(0), sel)),
                PhysOp::Tag(c) => Arc::new(ops::const_tag(child(0), c)),
                PhysOp::HashJoin(theta) | PhysOp::NestedLoopJoin(theta) => {
                    Arc::new(ops::join(child(0), child(1), theta))
                }
                PhysOp::MergeJoin { theta, prefix } => {
                    let (_, residual) = ops::split_condition(theta);
                    Arc::new(ops::merge_join(child(0), child(1), *prefix, &residual))
                }
                PhysOp::HashSemijoin(theta) | PhysOp::NestedLoopSemijoin(theta) => {
                    Arc::new(ops::semijoin(child(0), child(1), theta))
                }
                PhysOp::MergeSemijoin { theta, prefix } => {
                    let (_, residual) = ops::split_condition(theta);
                    Arc::new(ops::merge_semijoin(child(0), child(1), *prefix, &residual))
                }
                PhysOp::HashGroupCount(cols) => Arc::new(ops::group_count(child(0), cols)),
            };
            observe(id, node, &rel, start.elapsed());
            results[id] = Some(rel);
            for &c in &node.children {
                pending_consumers[c] -= 1;
                if pending_consumers[c] == 0 {
                    results[c] = None;
                }
            }
        }
        Ok(results[self.root].take().expect("root computed"))
    }

    /// Render the DAG as an `EXPLAIN`-style tree. The first occurrence of
    /// a shared node is expanded and tagged `×n`; later occurrences are
    /// printed as back-references (`… see #id`), making the memoization
    /// visible:
    ///
    /// ```text
    /// #6 merge-diff            diff
    /// ├─ #1 project            project[1]  ×2
    /// │  └─ #0 scan            R  ×3
    /// └─ #5 project            project[1]
    ///    └─ ...
    /// ```
    pub fn explain(&self) -> String {
        let mut out = format!(
            "physical plan: {} nodes for {} logical nodes ({} shared)\n",
            self.node_count(),
            self.expr_nodes,
            self.shared_node_count()
        );
        let mut seen = vec![false; self.nodes.len()];
        self.render(self.root, "", true, true, &mut seen, &mut out);
        out
    }

    #[allow(clippy::only_used_in_recursion)]
    fn render(
        &self,
        id: NodeId,
        prefix: &str,
        is_last: bool,
        is_root: bool,
        seen: &mut [bool],
        out: &mut String,
    ) {
        let (branch, child_prefix) = if is_root {
            (String::new(), String::new())
        } else if is_last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let node = &self.nodes[id];
        if seen[id] {
            out.push_str(&format!("{branch}#{id} … see above\n"));
            return;
        }
        seen[id] = true;
        let shared = if node.occurrences > 1 {
            format!("  ×{}", node.occurrences)
        } else {
            String::new()
        };
        let head = format!("{branch}#{id} {}", node.op.name());
        out.push_str(&format!("{head:<40} {}{shared}\n", node.label));
        let n = node.children.len();
        for (i, &c) in node.children.iter().enumerate() {
            self.render(c, &child_prefix, i + 1 == n, false, seen, out);
        }
    }
}

/// Bottom-up lowering state: hash-consing memo keyed by structural hash,
/// confirmed by full equality (hash collisions must not merge distinct
/// subtrees).
///
/// Each memo lookup hashes the probed subtree, so lowering costs
/// `O(n · depth)` hashing overall — microseconds at the expression sizes
/// of this reproduction (tens of nodes). Should machine-generated
/// expressions ever make this the bottleneck, the memo can be re-keyed by
/// `(operator, child NodeIds)` after lowering children for `O(n)` total.
struct Planner<'a> {
    schema: &'a Schema,
    nodes: Vec<PlanNode>,
    memo: FxHashMap<u64, Vec<(&'a Expr, NodeId)>>,
}

impl<'a> Planner<'a> {
    /// The plan node a (sub)expression with structural hash `h` lowered
    /// to, if already planned.
    fn find_hashed(&self, e: &Expr, h: u64) -> Option<NodeId> {
        self.memo
            .get(&h)?
            .iter()
            .find(|(cand, _)| *cand == e)
            .map(|&(_, id)| id)
    }

    /// Count every occurrence of every subexpression in the tree into the
    /// corresponding plan node.
    fn count_occurrences(&mut self, e: &Expr) {
        let id = self
            .find_hashed(e, e.structural_hash())
            .expect("lowered before counting");
        self.nodes[id].occurrences += 1;
        for c in e.children() {
            self.count_occurrences(c);
        }
    }

    fn lower(&mut self, e: &'a Expr) -> NodeId {
        let h = e.structural_hash();
        if let Some(id) = self.find_hashed(e, h) {
            return id;
        }
        let (op, children) = match e {
            Expr::Rel(name) => (PhysOp::Scan(name.clone()), vec![]),
            Expr::Union(a, b) => (PhysOp::MergeUnion, vec![self.lower(a), self.lower(b)]),
            Expr::Diff(a, b) => (PhysOp::MergeDiff, vec![self.lower(a), self.lower(b)]),
            Expr::Project(cols, a) => (PhysOp::Project(cols.clone()), vec![self.lower(a)]),
            Expr::Select(sel, a) => (PhysOp::Filter(sel.clone()), vec![self.lower(a)]),
            Expr::ConstTag(c, a) => (PhysOp::Tag(c.clone()), vec![self.lower(a)]),
            Expr::Join(theta, a, b) => {
                (Self::choose_join(theta), vec![self.lower(a), self.lower(b)])
            }
            Expr::Semijoin(theta, a, b) => (
                Self::choose_semijoin(theta),
                vec![self.lower(a), self.lower(b)],
            ),
            Expr::GroupCount(cols, a) => {
                (PhysOp::HashGroupCount(cols.clone()), vec![self.lower(a)])
            }
        };
        let arity = match (&op, children.as_slice()) {
            (PhysOp::Scan(name), _) => self
                .schema
                .arity_of(name)
                .expect("validated: relation exists"),
            (PhysOp::Project(cols), _) => cols.len(),
            (PhysOp::Tag(_), &[c]) => self.nodes[c].arity + 1,
            (PhysOp::HashGroupCount(cols), _) => cols.len() + 1,
            (
                PhysOp::HashJoin(_) | PhysOp::MergeJoin { .. } | PhysOp::NestedLoopJoin(_),
                &[l, r],
            ) => self.nodes[l].arity + self.nodes[r].arity,
            (_, &[c, ..]) => self.nodes[c].arity,
            _ => unreachable!("every non-scan operator has children"),
        };
        let id = self.nodes.len();
        self.nodes.push(PlanNode {
            op,
            children,
            label: e.label(),
            arity,
            occurrences: 0, // filled by `count_occurrences`
        });
        self.memo.entry(h).or_default().push((e, id));
        id
    }

    fn choose_join(theta: &Condition) -> PhysOp {
        if let Some(prefix) = ops::merge_prefix_len(theta) {
            PhysOp::MergeJoin {
                theta: theta.clone(),
                prefix,
            }
        } else if !ops::split_condition(theta).0.is_empty() {
            PhysOp::HashJoin(theta.clone())
        } else {
            PhysOp::NestedLoopJoin(theta.clone())
        }
    }

    fn choose_semijoin(theta: &Condition) -> PhysOp {
        if let Some(prefix) = ops::merge_prefix_len(theta) {
            PhysOp::MergeSemijoin {
                theta: theta.clone(),
                prefix,
            }
        } else if !ops::split_condition(theta).0.is_empty() {
            PhysOp::HashSemijoin(theta.clone())
        } else {
            PhysOp::NestedLoopSemijoin(theta.clone())
        }
    }
}

/// The result of an instrumented planned evaluation: one [`NodeStat`] per
/// **DAG node** (not per tree node — that is the point), in topological
/// order with the root last.
#[derive(Debug, Clone)]
pub struct PlannedReport {
    /// The query result (the root node's output).
    pub result: Relation,
    /// Per-node statistics, indexed by [`NodeId`]. Each node appears
    /// exactly once: the planned evaluator computes every distinct
    /// subexpression once.
    pub nodes: Vec<NodeStat>,
    /// Per-node occurrence counts in the logical tree (parallel to
    /// `nodes`).
    pub occurrences: Vec<usize>,
    /// The input database size `|D|`.
    pub db_size: usize,
    /// Size of the logical expression tree.
    pub expr_nodes: usize,
}

impl PlannedReport {
    /// The largest intermediate (or final) cardinality.
    pub fn max_intermediate(&self) -> usize {
        self.nodes.iter().map(|n| n.cardinality).max().unwrap_or(0)
    }

    /// Total time across all plan nodes.
    pub fn total_elapsed(&self) -> Duration {
        self.nodes.iter().map(|n| n.elapsed).sum()
    }

    /// Tree-node evaluations the memoization avoided
    /// (`expr_nodes − plan nodes`).
    pub fn evaluations_saved(&self) -> usize {
        self.expr_nodes - self.nodes.len()
    }

    /// Render a per-node table (id, operator, label, cardinality, ×occ).
    pub fn render(&self) -> String {
        let mut out = format!(
            "|D| = {}, output = {}, max intermediate = {}, {} plan nodes for {} tree nodes\n",
            self.db_size,
            self.result.len(),
            self.max_intermediate(),
            self.nodes.len(),
            self.expr_nodes,
        );
        for (n, &occ) in self.nodes.iter().zip(&self.occurrences) {
            let shared = if occ > 1 {
                format!("  ×{occ}")
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  [{:>3}] {:<20} {:<28} arity {}  card {}{shared}\n",
                n.id, n.operator, n.label, n.arity, n.cardinality
            ));
        }
        out
    }
}

/// Evaluate `expr` on `db` through the physical planner: plan against the
/// database's induced schema, then execute the DAG. Agrees with
/// [`crate::evaluate`] on every valid expression, but evaluates each
/// distinct subexpression once and never deep-clones a stored relation.
///
/// ```
/// use sj_algebra::division;
/// use sj_eval::{evaluate, evaluate_planned};
/// use sj_storage::{Database, Relation};
///
/// let mut db = Database::new();
/// db.set("R", Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7]]));
/// db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
/// let e = division::division_double_difference("R", "S");
/// assert_eq!(
///     evaluate_planned(&e, &db).unwrap(),
///     evaluate(&e, &db).unwrap()
/// );
/// ```
pub fn evaluate_planned(expr: &Expr, db: &Database) -> Result<Relation, EvalError> {
    PhysicalPlan::of(expr, &db.schema())?.execute(db)
}

/// Planned evaluation with per-DAG-node instrumentation.
pub fn evaluate_planned_instrumented(
    expr: &Expr,
    db: &Database,
) -> Result<PlannedReport, EvalError> {
    PhysicalPlan::of(expr, &db.schema())?.execute_instrumented(db)
}

/// Plan and render the physical DAG without executing it.
pub fn explain_plan(expr: &Expr, schema: &Schema) -> Result<String, EvalError> {
    Ok(PhysicalPlan::of(expr, schema)?.explain())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::evaluate;
    use sj_algebra::division;

    fn division_db() -> Database {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[3, 8], &[3, 9]]),
        );
        db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        db
    }

    #[test]
    fn division_dag_shares_r_and_its_projection() {
        let e = division::division_double_difference("R", "S");
        let plan = PhysicalPlan::of(&e, &division_db().schema()).unwrap();
        // 10 tree nodes collapse to 7 distinct subexpressions.
        assert_eq!(plan.expr_node_count(), 10);
        assert_eq!(plan.node_count(), 7);
        let scan_r = plan
            .nodes()
            .iter()
            .find(|n| n.op == PhysOp::Scan("R".into()))
            .unwrap();
        assert_eq!(scan_r.occurrences, 3);
        let proj = plan
            .nodes()
            .iter()
            .find(|n| n.label == "project[1]" && n.occurrences > 1)
            .unwrap();
        assert_eq!(proj.occurrences, 2);
    }

    #[test]
    fn division_each_distinct_subtree_evaluated_exactly_once() {
        // The acceptance check of the planner issue: instrumentation shows
        // one evaluation per distinct subtree — R once (the tree has it
        // three times), π₁(R) once (twice in the tree).
        let e = division::division_double_difference("R", "S");
        let db = division_db();
        let report = evaluate_planned_instrumented(&e, &db).unwrap();
        assert_eq!(report.expr_nodes, 10);
        assert_eq!(report.nodes.len(), 7);
        assert_eq!(report.evaluations_saved(), 3);
        assert_eq!(report.nodes.iter().filter(|n| n.label == "R").count(), 1);
        assert_eq!(
            report
                .nodes
                .iter()
                .filter(|n| n.label == "project[1]")
                .count(),
            2, // π₁(R) and π₁(diff) are distinct subexpressions
        );
        // Ids are assigned in topological order and are exactly 0..n.
        for (i, n) in report.nodes.iter().enumerate() {
            assert_eq!(n.id, i);
        }
        assert_eq!(report.result, evaluate(&e, &db).unwrap());
    }

    #[test]
    fn planned_agrees_with_naive_on_running_examples() {
        let mut db = Database::new();
        db.set(
            "Visits",
            Relation::from_str_rows(&[
                &["an", "bad bar"],
                &["bob", "good bar"],
                &["carl", "empty bar"],
            ]),
        );
        db.set(
            "Serves",
            Relation::from_str_rows(&[&["bad bar", "swill"], &["good bar", "nectar"]]),
        );
        db.set("Likes", Relation::from_str_rows(&[&["bob", "nectar"]]));
        for e in [
            division::example3_lousy_bar_sa(),
            division::example3_lousy_bar_ra(),
            division::cyclic_beer_query_ra(),
        ] {
            assert_eq!(
                evaluate_planned(&e, &db).unwrap(),
                evaluate(&e, &db).unwrap(),
                "{e}"
            );
        }
        let ddb = division_db();
        for e in [
            division::division_double_difference("R", "S"),
            division::division_via_join("R", "S"),
            division::division_equality("R", "S"),
            division::division_counting("R", "S"),
            division::division_equality_counting("R", "S"),
        ] {
            assert_eq!(
                evaluate_planned(&e, &ddb).unwrap(),
                evaluate(&e, &ddb).unwrap(),
                "{e}"
            );
        }
    }

    #[test]
    fn operator_choice_prefers_merge_on_aligned_prefix() {
        let schema = Schema::new([("R", 2), ("S", 2)]);
        let cases = [
            (
                Expr::rel("R").semijoin(Condition::eq(1, 1), Expr::rel("S")),
                "merge-semijoin",
            ),
            (
                Expr::rel("R").join(Condition::eq_pairs([(1, 1), (2, 2)]), Expr::rel("S")),
                "merge-join",
            ),
            (
                Expr::rel("R").semijoin(Condition::eq(2, 1), Expr::rel("S")),
                "hash-semijoin",
            ),
            (
                Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S")),
                "hash-join",
            ),
            (
                Expr::rel("R").join(Condition::lt(1, 1), Expr::rel("S")),
                "nested-loop-join",
            ),
            (
                Expr::rel("R").semijoin(Condition::always(), Expr::rel("S")),
                "nested-loop-semijoin",
            ),
            (
                // Merge with a residual: 1=1 aligned, 2<2 rides along.
                Expr::rel("R").join(
                    Condition::eq(1, 1).and(2, sj_algebra::CompOp::Lt, 2),
                    Expr::rel("S"),
                ),
                "merge-join",
            ),
        ];
        for (e, expect) in cases {
            let plan = PhysicalPlan::of(&e, &schema).unwrap();
            let root = &plan.nodes()[plan.root()];
            assert_eq!(root.op.name(), expect, "{e}");
        }
    }

    #[test]
    fn merge_operators_agree_with_naive_evaluation() {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[&[1, 10], &[1, 20], &[2, 5], &[3, 1], &[3, 2]]),
        );
        db.set(
            "S",
            Relation::from_int_rows(&[&[1, 15], &[1, 30], &[3, 0], &[4, 9]]),
        );
        let exprs = [
            Expr::rel("R").join(Condition::eq(1, 1), Expr::rel("S")),
            Expr::rel("R").semijoin(Condition::eq(1, 1), Expr::rel("S")),
            Expr::rel("R").join(
                Condition::eq(1, 1).and(2, sj_algebra::CompOp::Lt, 2),
                Expr::rel("S"),
            ),
            Expr::rel("R").semijoin(
                Condition::eq(1, 1).and(2, sj_algebra::CompOp::Gt, 2),
                Expr::rel("S"),
            ),
        ];
        for e in exprs {
            assert_eq!(
                evaluate_planned(&e, &db).unwrap(),
                evaluate(&e, &db).unwrap(),
                "{e}"
            );
        }
    }

    #[test]
    fn explain_shows_operators_and_sharing() {
        let e = division::division_double_difference("R", "S");
        let s = explain_plan(&e, &division_db().schema()).unwrap();
        assert!(s.contains("physical plan: 7 nodes for 10 logical nodes"));
        assert!(s.contains("scan"));
        assert!(s.contains("nested-loop-join"));
        assert!(s.contains("×3"), "R is shared three times:\n{s}");
        assert!(s.contains("… see above"), "{s}");
    }

    #[test]
    fn execute_rejects_mismatched_database() {
        let e = Expr::rel("R").project([1]);
        let plan = PhysicalPlan::of(&e, &Schema::new([("R", 2)])).unwrap();
        // Missing relation.
        let empty = Database::new();
        assert!(matches!(
            plan.execute(&empty),
            Err(EvalError::Algebra(AlgebraError::UnknownRelation(_)))
        ));
        // Wrong arity.
        let mut wrong = Database::new();
        wrong.set("R", Relation::from_int_rows(&[&[1, 2, 3]]));
        assert!(matches!(
            plan.execute(&wrong),
            Err(EvalError::Algebra(AlgebraError::ArityMismatch { .. }))
        ));
    }

    #[test]
    fn planned_validation_errors_surface_like_plain() {
        let db = Database::new();
        assert!(evaluate_planned(&Expr::rel("R"), &db).is_err());
        let mut db2 = Database::new();
        db2.set("R", Relation::empty(1));
        assert!(evaluate_planned(&Expr::rel("R").project([2]), &db2).is_err());
    }

    #[test]
    fn scan_is_zero_copy() {
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&[&[1], &[2]]));
        let plan = PhysicalPlan::of(&Expr::rel("R"), &db.schema()).unwrap();
        // A bare scan's result must be the stored allocation itself.
        let shared = plan.run(&db, |_, _, _, _| {}).unwrap();
        assert!(std::ptr::eq(shared.as_ref(), db.get("R").unwrap()));
    }

    #[test]
    fn report_render_mentions_sharing_and_plan_size() {
        let e = division::division_double_difference("R", "S");
        let report = evaluate_planned_instrumented(&e, &division_db()).unwrap();
        let s = report.render();
        assert!(s.contains("7 plan nodes for 10 tree nodes"), "{s}");
        assert!(s.contains("×3"), "{s}");
        assert!(s.contains("scan"), "{s}");
    }
}
