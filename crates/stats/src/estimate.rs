//! Cardinality estimation for algebra expressions and the direct set
//! operators.
//!
//! The estimator walks an [`Expr`] bottom-up, carrying per-column
//! distinct counts (and, where available, histograms) through the
//! operators:
//!
//! * **selection** selectivity comes from the column histogram for
//!   constant predicates and the distinct-count uniform assumption for
//!   column-column predicates;
//! * **join** cardinality uses the classical
//!   `|R|·|S| / max(d_R(a), d_S(b))` distinct-count formula per
//!   equality atom, capped by the `|R|·|S|` product — the binary
//!   special case of the AGM output bound (*Size bounds and query
//!   plans for relational joins*, Atserias–Grohe–Marx), which is what
//!   makes the estimate safe to use as an upper bound for operator
//!   gating;
//! * **division** output is estimated from the dividend's group
//!   statistics: each group qualifies with probability
//!   `p^|S|` where `p` is the per-element coverage probability
//!   ([`division_rows`]).
//!
//! Estimates are deliberately *upper-leaning*: the planner uses them to
//! rule out hash machinery and partitioning on provably tiny inputs,
//! where an overestimate merely forfeits a micro-optimization while an
//! underestimate would pick a quadratic loop on a large node.

use crate::catalog::StatsSource;
use crate::histogram::{Histogram, StringHistogram};
use crate::table::TableStats;
use sj_algebra::{CompOp, Condition, Expr, Selection};

/// Default selectivity of a `<` / `>` atom (the System R convention).
const RANGE_SEL: f64 = 1.0 / 3.0;
/// Default selectivity of a `≠` atom.
const NEQ_SEL: f64 = 0.9;

/// Estimated shape of one column of an intermediate result.
#[derive(Debug, Clone)]
pub struct ColEst {
    /// Estimated distinct values.
    pub distinct: f64,
    /// Estimated count of the column's most frequent value — the skew
    /// statistic behind [`eq_join_rows_skewed`]. `0.0` means unknown;
    /// consumers fall back to the uniform `rows / distinct`. Exact for
    /// base-table columns ([`TableStats`]' `max_freq`), inherited under
    /// the same structural-copy rule as [`ColEst::histogram`], and
    /// upper-leaning through filters (a selection can only shrink a
    /// value's count).
    pub max_freq: f64,
    /// Histogram inherited from the base relation, when the column is
    /// a structural copy of a base column (selections and reorderings
    /// preserve it; unions, differences and aggregates drop it).
    pub histogram: Option<Histogram>,
    /// Dictionary-code histogram of a string base column, inherited
    /// under the same structural-copy rule as [`ColEst::histogram`].
    pub strings: Option<StringHistogram>,
}

/// Estimated shape of an intermediate result.
#[derive(Debug, Clone)]
pub struct CardEst {
    /// Estimated output cardinality.
    pub rows: f64,
    /// **Guaranteed** upper bound on the output cardinality, derived
    /// without any selectivity assumption (selections and semijoins
    /// cannot grow their input, a join cannot exceed the operand
    /// product, a union cannot exceed the operand sum). Unlike
    /// [`CardEst::rows`] this can never under-estimate, so it is the
    /// safe quantity for decisions where an underestimate would be
    /// catastrophic — e.g. demoting a hash join to a nested loop.
    pub upper: f64,
    /// Per-column estimates (length = output arity).
    pub cols: Vec<ColEst>,
}

impl CardEst {
    /// Output arity of the estimated expression.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Clamp the row estimate by the guaranteed upper bound and every
    /// per-column distinct estimate by the row estimate (distinct
    /// values can never exceed rows).
    fn clamped(mut self) -> CardEst {
        self.rows = self.rows.min(self.upper);
        for c in &mut self.cols {
            c.distinct = c.distinct.min(self.rows).max(0.0);
            c.max_freq = c.max_freq.min(self.rows).max(0.0);
        }
        self
    }
}

/// The expression cardinality estimator over a [`StatsSource`].
pub struct Estimator<'a> {
    src: &'a dyn StatsSource,
}

impl<'a> Estimator<'a> {
    /// An estimator reading base-relation statistics from `src`.
    pub fn new(src: &'a dyn StatsSource) -> Estimator<'a> {
        Estimator { src }
    }

    /// Estimate the output shape of `expr`; `None` when statistics for
    /// some leaf relation are unavailable.
    pub fn estimate(&self, expr: &Expr) -> Option<CardEst> {
        Some(match expr {
            Expr::Rel(name) => {
                let t = self.src.table_stats(name)?;
                CardEst {
                    rows: t.rows as f64,
                    upper: t.rows as f64,
                    cols: t
                        .columns
                        .iter()
                        .map(|c| ColEst {
                            distinct: c.distinct as f64,
                            max_freq: c.max_freq as f64,
                            histogram: Some(c.histogram.clone()),
                            strings: c.strings.clone(),
                        })
                        .collect(),
                }
            }
            Expr::Union(a, b) => {
                let (a, b) = (self.estimate(a)?, self.estimate(b)?);
                CardEst {
                    rows: a.rows + b.rows,
                    upper: a.upper + b.upper,
                    cols: a
                        .cols
                        .iter()
                        .zip(&b.cols)
                        .map(|(x, y)| ColEst {
                            distinct: x.distinct + y.distinct,
                            max_freq: x.max_freq + y.max_freq,
                            histogram: None,
                            strings: None,
                        })
                        .collect(),
                }
                .clamped()
            }
            Expr::Diff(a, b) => {
                // Upper bound: the difference never outgrows the left
                // operand (estimating the overlap would need value-level
                // correlation the statistics don't carry).
                let a = self.estimate(a)?;
                let _ = self.estimate(b)?;
                a
            }
            Expr::Project(cols, a) => {
                let a = self.estimate(a)?;
                let kept: Vec<ColEst> = cols.iter().map(|&c| a.cols[c - 1].clone()).collect();
                // Set semantics dedups: output rows are bounded by the
                // joint distinct count of the kept columns.
                let joint: f64 = kept.iter().map(|c| c.distinct.max(1.0)).product();
                CardEst {
                    rows: a.rows.min(joint),
                    upper: a.upper,
                    cols: kept,
                }
                .clamped()
            }
            Expr::Select(sel, a) => {
                let a = self.estimate(a)?;
                let s = selection_selectivity(sel, &a);
                CardEst {
                    rows: a.rows * s,
                    // No selectivity assumption: a filter passes at
                    // worst everything.
                    upper: a.upper,
                    cols: a.cols,
                }
                .clamped()
            }
            Expr::ConstTag(_, a) => {
                let mut a = self.estimate(a)?;
                a.cols.push(ColEst {
                    distinct: 1.0,
                    // Every row carries the constant.
                    max_freq: a.rows,
                    histogram: None,
                    strings: None,
                });
                a
            }
            Expr::Join(theta, a, b) => {
                let (a, b) = (self.estimate(a)?, self.estimate(b)?);
                join_est(theta, &a, &b)
            }
            Expr::Semijoin(theta, a, b) => {
                let (a, b) = (self.estimate(a)?, self.estimate(b)?);
                let rows = a.rows * semijoin_selectivity(theta, &a, &b);
                CardEst {
                    rows,
                    upper: a.upper,
                    cols: a.cols,
                }
                .clamped()
            }
            Expr::GroupCount(cols, a) => {
                let a = self.estimate(a)?;
                let kept: Vec<ColEst> = cols
                    .iter()
                    .map(|&c| ColEst {
                        distinct: a.cols[c - 1].distinct,
                        max_freq: 0.0,
                        histogram: None,
                        strings: None,
                    })
                    .collect();
                let joint: f64 = kept.iter().map(|c| c.distinct.max(1.0)).product();
                let rows = if cols.is_empty() {
                    1.0
                } else {
                    a.rows.min(joint)
                };
                let count_col = ColEst {
                    distinct: rows.sqrt().max(1.0),
                    max_freq: 0.0,
                    histogram: None,
                    strings: None,
                };
                CardEst {
                    rows,
                    // γ emits at most one row per input row (plus the
                    // global-count row on empty input).
                    upper: a.upper.max(1.0),
                    cols: kept.into_iter().chain([count_col]).collect(),
                }
                .clamped()
            }
        })
    }
}

/// Selectivity of one selection predicate against an input estimate.
fn selection_selectivity(sel: &Selection, input: &CardEst) -> f64 {
    match sel {
        Selection::Eq(i, j) => {
            let (di, dj) = (input.cols[i - 1].distinct, input.cols[j - 1].distinct);
            1.0 / di.max(dj).max(1.0)
        }
        Selection::Lt(_, _) => RANGE_SEL,
        Selection::EqConst(i, c) => {
            let col = &input.cols[i - 1];
            // A string constant against a dictionary-encoded column:
            // the code histogram answers directly, and a constant
            // outside the dictionary selects exactly nothing.
            if let (Some(s), Some(sh)) = (c.as_str(), col.strings.as_ref()) {
                if sh.count() > 0 {
                    return (sh.estimate_eq(s) / sh.count() as f64).clamp(0.0, 1.0);
                }
            }
            match &col.histogram {
                Some(h) if h.count() > 0 => (h.estimate_eq(c) / h.count() as f64).clamp(0.0, 1.0),
                _ => 1.0 / col.distinct.max(1.0),
            }
        }
    }
}

/// Pairwise join estimate — the **order-costing primitive**: the
/// estimated shape of `a ⋈θ b` from the operand estimates alone. This
/// is the same combination rule [`Estimator::estimate`] applies to
/// join nodes, exposed so a join-order search can cost candidate
/// (partial) orders by folding it over operand estimates without
/// materializing a candidate expression tree per order. `rows` is
/// capped by the operand product (the binary AGM bound); `upper` stays
/// the guaranteed product bound.
pub fn join_est(theta: &Condition, a: &CardEst, b: &CardEst) -> CardEst {
    let rows = join_rows(theta, a, b);
    let upper = a.upper * b.upper;
    let cols = a.cols.iter().chain(&b.cols).cloned().collect();
    CardEst { rows, upper, cols }.clamped()
}

/// The AGM output bound of a **simple cycle** of binary relations
/// `R₁(x₁,x₂) ⋈ R₂(x₂,x₃) ⋈ … ⋈ Rₖ(xₖ,x₁)`: assigning fractional
/// edge-cover weight ½ to every edge covers each vertex exactly once,
/// so the bound is `∏ |Rᵢ|^½` (Atserias–Grohe–Marx). Any pairwise join
/// order must materialize an open path first, whose estimate can exceed
/// this — the trigger for the worst-case-optimal multiway join.
pub fn cycle_agm_bound(rel_rows: impl IntoIterator<Item = f64>) -> f64 {
    rel_rows
        .into_iter()
        .map(|r| r.max(1.0).sqrt())
        .product::<f64>()
}

/// Skew-aware estimate of the equality join `a.col_a = b.col_b`
/// (1-based columns): the true output is `Σ_v cntₐ(v)·cnt_b(v)`, which
/// is at most `min(|a|·m_b, |b|·m_a)` where `m` is the
/// most-frequent-value count ([`ColEst::max_freq`]) — tight exactly
/// when the heavy values align. Under uniform frequencies
/// (`m = rows/distinct`) this reduces to the classical
/// `|a|·|b| / max(d_a, d_b)` formula of [`join_est`], so it strictly
/// generalizes it; on hub-skewed columns it grows with the hub degree,
/// which the uniform formula averages away.
///
/// This is the **multiway-join trigger's** costing primitive: with
/// consistent uniform statistics (`rows ≤ ∏ distinct` per relation)
/// the classical pairwise estimates over a cycle can *never* exceed
/// the cycle's AGM output bound — their product telescopes to at most
/// `∏|Rᵢ|` — so only a skew statistic can detect the regime where
/// every pairwise order materializes a super-AGM intermediate.
pub fn eq_join_rows_skewed(a: &CardEst, a_col: usize, b: &CardEst, b_col: usize) -> f64 {
    let freq = |e: &CardEst, col: usize| {
        let c = &e.cols[col - 1];
        if c.max_freq > 0.0 {
            c.max_freq
        } else {
            e.rows / c.distinct.max(1.0)
        }
    };
    (a.rows * freq(b, b_col))
        .min(b.rows * freq(a, a_col))
        .min(a.rows * b.rows)
}

/// Estimated join output: the distinct-count formula per equality
/// atom, default selectivities for the inequality atoms, capped by the
/// AGM product bound.
fn join_rows(theta: &Condition, a: &CardEst, b: &CardEst) -> f64 {
    let product = a.rows * b.rows;
    let mut rows = product;
    for atom in theta.atoms() {
        let (da, db) = (
            a.cols[atom.left - 1].distinct,
            b.cols[atom.right - 1].distinct,
        );
        rows *= match atom.op {
            CompOp::Eq => 1.0 / da.max(db).max(1.0),
            CompOp::Neq => NEQ_SEL,
            CompOp::Lt | CompOp::Gt => RANGE_SEL,
        };
    }
    rows.min(product)
}

/// Estimated fraction of left tuples surviving `a ⋉θ b`: per equality
/// atom, the probability the left key value occurs on the right under
/// the domain-containment assumption.
fn semijoin_selectivity(theta: &Condition, a: &CardEst, b: &CardEst) -> f64 {
    if theta.is_empty() {
        // Unconditional semijoin = emptiness test on the right side.
        return if b.rows >= 0.5 { 1.0 } else { 0.0 };
    }
    let mut sel = 1.0;
    for atom in theta.atoms() {
        let (da, db) = (
            a.cols[atom.left - 1].distinct,
            b.cols[atom.right - 1].distinct,
        );
        sel *= match atom.op {
            CompOp::Eq => (db / da.max(1.0)).min(1.0),
            CompOp::Neq => 1.0,
            CompOp::Lt | CompOp::Gt => 1.0 - RANGE_SEL * 0.5,
        };
    }
    sel.clamp(0.0, 1.0)
}

/// Estimated division output `R(A,B) ÷ S(B)` from the dividend's group
/// statistics: under the uniform-coverage assumption each group holds
/// a given divisor element with probability
/// `p = min(1, mean_set / distinct_B)`, so a group contains all of `S`
/// with probability `p^|S|` — and only groups at least as large as the
/// divisor can qualify at all. The equality semantics additionally
/// requires the exact size match, modeled as one draw from the
/// observed set-size range.
pub fn division_rows(r: &TableStats, s_rows: usize, equality: bool) -> f64 {
    let Some(g) = &r.group else { return 0.0 };
    if g.groups == 0 {
        return 0.0;
    }
    if s_rows == 0 {
        // R ÷ ∅: every group qualifies under containment; equality
        // requires an empty set, which set semantics cannot store.
        return if equality { 0.0 } else { g.groups as f64 };
    }
    if g.max_set < s_rows {
        return 0.0;
    }
    let p_elem = (g.mean_set / r.distinct(1).max(1) as f64).min(1.0);
    // `p_elem > 0` whenever `groups > 0` (every group holds ≥ 1 row),
    // so the estimate is floored strictly above 0.0: `powi` used to
    // underflow to exactly 0 for divisors in the thousands, and a hard
    // 0 reads as "provably empty" downstream (the planner demotes hash
    // operators on provably tiny inputs). See [`prob_pow`].
    let mut est = g.groups as f64 * prob_pow(p_elem, s_rows as f64);
    if equality {
        let size_span = (g.max_set - g.min_set + 1) as f64;
        est /= size_span;
    }
    est.clamp(f64::MIN_POSITIVE, g.groups as f64)
}

/// Estimated selectivity of `B-set ⊇ D-set` over group pairs: the
/// probability that one `containing` group covers one `contained`
/// group, under the same uniform-coverage assumption as
/// [`division_rows`]. Used by the cost model to price the exact
/// verification work behind a signature filter.
pub fn containment_selectivity(containing: &TableStats, contained: &TableStats) -> f64 {
    let (Some(cg), Some(dg)) = (&containing.group, &contained.group) else {
        return 0.0;
    };
    if cg.groups == 0 || dg.groups == 0 {
        return 0.0;
    }
    let p_elem = (cg.mean_set / containing.distinct(1).max(1) as f64).min(1.0);
    prob_pow(p_elem, dg.mean_set.max(1.0)).clamp(0.0, 1.0)
}

/// `p^n` for a probability `p ∈ [0, 1]`, computed in log-space and
/// floored at the smallest positive double. A strictly positive base
/// must never collapse to exactly 0.0: estimates of 0 read as
/// "provably empty" to consumers (hash→nested-loop demotion, cost
/// ranking), and `powi`/`powf` underflow to hard 0 once the exponent
/// reaches the low thousands. The log-space form keeps the result
/// positive and monotone in `n` all the way down.
fn prob_pow(p: f64, n: f64) -> f64 {
    if p <= 0.0 {
        0.0
    } else if p >= 1.0 || n <= 0.0 {
        1.0
    } else {
        (n * p.ln()).exp().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::{FxHashMap, Relation, Tuple, Value};
    use std::sync::Arc;

    fn pairs(rows: &[[i64; 2]]) -> Relation {
        Relation::from_tuples(2, rows.iter().map(|r| Tuple::from_ints(r))).unwrap()
    }

    fn source(rels: &[(&str, &Relation)]) -> FxHashMap<String, Arc<TableStats>> {
        rels.iter()
            .map(|(n, r)| (n.to_string(), Arc::new(TableStats::analyze(r))))
            .collect()
    }

    #[test]
    fn skewed_join_estimate_generalizes_the_uniform_formula() {
        // Uniform columns: the skew-aware bound collapses to the
        // classical |a|·|b| / max(d_a, d_b).
        let uni_rows: Vec<[i64; 2]> = (0..100).map(|i| [i % 10, i]).collect();
        let uni = pairs(&uni_rows);
        let src = source(&[("U", &uni)]);
        let e = Estimator::new(&src).estimate(&Expr::rel("U")).unwrap();
        let skewed = eq_join_rows_skewed(&e, 1, &e, 1);
        let uniform = join_rows(&Condition::eq(1, 1), &e, &e);
        assert_eq!(skewed, uniform, "uniform data: both formulas agree");

        // Hub column: value 0 occurs 100× among 199 rows. The uniform
        // formula averages the hub away; the skew-aware bound sees it.
        let mut hub_rows: Vec<[i64; 2]> = (0..100).map(|i| [0, i]).collect();
        hub_rows.extend((1..100).map(|i| [i, 0]));
        let hub = pairs(&hub_rows);
        let src = source(&[("H", &hub)]);
        let h = Estimator::new(&src).estimate(&Expr::rel("H")).unwrap();
        assert_eq!(h.cols[0].max_freq, 100.0);
        let skewed = eq_join_rows_skewed(&h, 1, &h, 1);
        let uniform = join_rows(&Condition::eq(1, 1), &h, &h);
        assert!(
            skewed > 5.0 * uniform,
            "hub blowup detected: skewed {skewed} vs uniform {uniform}"
        );
        // …and it is still a sound upper-style estimate, never above
        // the operand product.
        assert!(skewed <= h.rows * h.rows);
    }

    #[test]
    fn leaf_estimate_matches_stats() {
        let r = pairs(&[[1, 10], [1, 11], [2, 10]]);
        let src = source(&[("R", &r)]);
        let est = Estimator::new(&src).estimate(&Expr::rel("R")).unwrap();
        assert_eq!(est.rows, 3.0);
        assert_eq!(est.arity(), 2);
        assert_eq!(est.cols[0].distinct, 2.0);
        assert_eq!(est.cols[1].distinct, 2.0);
        assert!(Estimator::new(&src)
            .estimate(&Expr::rel("missing"))
            .is_none());
    }

    #[test]
    fn selection_and_projection_estimates() {
        let rows: Vec<[i64; 2]> = (0..100).map(|i| [i % 10, i]).collect();
        let r = pairs(&rows);
        let src = source(&[("R", &r)]);
        let e = Estimator::new(&src);
        // σ₁₌c: 10 rows per key, histogram-exact (narrow range).
        let sel = e
            .estimate(&Expr::rel("R").select_const(1, Value::int(3)))
            .unwrap();
        assert!((sel.rows - 10.0).abs() < 2.0, "rows = {}", sel.rows);
        // π₁ dedups to the 10 keys.
        let proj = e.estimate(&Expr::rel("R").project([1])).unwrap();
        assert!((proj.rows - 10.0).abs() < 1e-9);
        // Tag appends a constant column.
        let tag = e.estimate(&Expr::rel("R").tag(Value::int(9))).unwrap();
        assert_eq!(tag.arity(), 3);
        assert_eq!(tag.rows, 100.0);
    }

    #[test]
    fn join_estimate_uses_distinct_counts_and_caps_at_product() {
        let rows: Vec<[i64; 2]> = (0..100).map(|i| [i % 10, i]).collect();
        let r = pairs(&rows);
        let src = source(&[("R", &r)]);
        let e = Estimator::new(&src);
        // Self-join on the key: 100·100/10 = 1000 (actual: 10 keys ×
        // 10×10 pairs = 1000 — exact on this uniform input).
        let j = e
            .estimate(&Expr::rel("R").join(sj_algebra::Condition::eq(1, 1), Expr::rel("R")))
            .unwrap();
        assert!((j.rows - 1000.0).abs() < 1e-9);
        assert_eq!(j.arity(), 4);
        // The cartesian product is the AGM cap.
        let x = e
            .estimate(&Expr::rel("R").join(sj_algebra::Condition::always(), Expr::rel("R")))
            .unwrap();
        assert!((x.rows - 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn semijoin_estimate_never_exceeds_left() {
        let rows: Vec<[i64; 2]> = (0..60).map(|i| [i % 6, i]).collect();
        let r = pairs(&rows);
        let s = pairs(&[[0, 1], [1, 2], [2, 3]]);
        let src = source(&[("R", &r), ("S", &s)]);
        let e = Estimator::new(&src);
        let sj = e
            .estimate(&Expr::rel("R").semijoin(sj_algebra::Condition::eq(1, 1), Expr::rel("S")))
            .unwrap();
        assert!(sj.rows <= 60.0);
        // 3 of 6 keys survive: 30 rows.
        assert!((sj.rows - 30.0).abs() < 1e-9);
    }

    #[test]
    fn division_rows_estimates() {
        // 20 groups over a 10-element domain, each group ~5 elements:
        // p = 0.5, |S| = 2 ⇒ about a quarter of the groups qualify.
        let rows: Vec<[i64; 2]> = (0..20)
            .flat_map(|g| (0..5).map(move |v| [g, (g * 3 + v * 2) % 10]))
            .collect();
        let r = TableStats::analyze(&pairs(&rows));
        let est = division_rows(&r, 2, false);
        assert!((3.0..8.0).contains(&est), "est = {est}");
        // Empty divisor: every group qualifies (containment).
        assert_eq!(division_rows(&r, 0, false), 20.0);
        assert_eq!(division_rows(&r, 0, true), 0.0);
        // Divisor larger than the largest set: impossible.
        assert_eq!(division_rows(&r, 50, false), 0.0);
        // Equality semantics is strictly more selective.
        assert!(division_rows(&r, 2, true) <= est);
    }

    #[test]
    fn division_estimate_never_underflows_to_zero_on_huge_divisors() {
        // Regression: `p_elem.powi(s_rows)` underflowed to exactly 0.0
        // once the divisor reached the low thousands (0.525^2000 ≈
        // 1e-560, far below the smallest denormal), and est_rows = 0
        // reads as "provably empty" — triggering the planner's
        // hash→nested-loop demotion on precisely the inputs where a
        // nested loop is catastrophic.
        //
        // One group with 2000 distinct elements and one with 100:
        // distinct(B) = 2000, mean_set = 1050, p_elem = 0.525 < 1,
        // max_set = 2000 so a 2000-element divisor passes the guards.
        let mut rows: Vec<[i64; 2]> = (0..2000).map(|v| [1, v]).collect();
        rows.extend((0..100).map(|v| [2, v]));
        let r = TableStats::analyze(&pairs(&rows));
        let at_boundary = division_rows(&r, 2000, false);
        assert!(
            at_boundary > 0.0,
            "underflow boundary must stay positive, got {at_boundary}"
        );
        // Equality semantics divides by the size span but must not
        // collapse to 0 either.
        assert!(division_rows(&r, 2000, true) > 0.0);
        // Still monotone: a bigger divisor is never *more* likely
        // to be contained.
        assert!(division_rows(&r, 2000, false) <= division_rows(&r, 500, false));
        // And the provably-empty guards still return hard zeros.
        assert_eq!(division_rows(&r, 2001, false), 0.0, "divisor > max_set");
    }

    #[test]
    fn containment_selectivity_never_underflows_on_huge_mean_sets() {
        // Same underflow through the powf path: one group of 5000
        // elements out of a 10000-element domain gives p = 0.5 and
        // mean_set = 5000 ⇒ 0.5^5000 underflows without log-space.
        let rows: Vec<[i64; 2]> = (0..5000).map(|v| [1, v * 2]).collect();
        let t = TableStats::analyze(&pairs(&rows));
        let sel = containment_selectivity(&t, &t);
        assert!(sel > 0.0, "powf underflow must be floored, got {sel}");
        assert!(sel <= 1.0);
    }

    #[test]
    fn join_est_matches_the_estimator_join_rule() {
        let r = pairs(&[[1, 10], [1, 11], [2, 10], [3, 12]]);
        let s = pairs(&[[10, 7], [11, 7], [12, 8]]);
        let src = source(&[("R", &r), ("S", &s)]);
        let e = Estimator::new(&src);
        let theta = sj_algebra::Condition::eq(2, 1);
        let via_expr = e
            .estimate(&Expr::rel("R").join(theta.clone(), Expr::rel("S")))
            .unwrap();
        let (er, es) = (
            e.estimate(&Expr::rel("R")).unwrap(),
            e.estimate(&Expr::rel("S")).unwrap(),
        );
        let via_fold = join_est(&theta, &er, &es);
        assert_eq!(via_fold.rows, via_expr.rows);
        assert_eq!(via_fold.upper, via_expr.upper);
        assert_eq!(via_fold.arity(), via_expr.arity());
        // AGM cap: never above the operand product.
        assert!(via_fold.rows <= er.rows * es.rows);
    }

    #[test]
    fn cycle_agm_bound_is_the_sqrt_product() {
        // Triangle of 100-row binary relations: bound = 100^(3/2) = 1000,
        // far below any pairwise intermediate product of 10_000.
        let b = cycle_agm_bound([100.0, 100.0, 100.0]);
        assert!((b - 1000.0).abs() < 1e-6, "bound = {b}");
        // Empty input: the empty product is 1 (the empty join's row).
        assert_eq!(cycle_agm_bound([]), 1.0);
        // Zero-row relations clamp to 1 so the bound stays usable.
        assert!(cycle_agm_bound([0.0, 4.0]) >= 1.0);
    }

    #[test]
    fn containment_selectivity_bounds() {
        let rows: Vec<[i64; 2]> = (0..30)
            .flat_map(|g| (0..4).map(move |v| [g, (g + v) % 8]))
            .collect();
        let t = TableStats::analyze(&pairs(&rows));
        let sel = containment_selectivity(&t, &t);
        assert!((0.0..=1.0).contains(&sel));
        assert!(sel > 0.0);
        let empty = TableStats::analyze(&Relation::empty(2));
        assert_eq!(containment_selectivity(&empty, &t), 0.0);
    }

    #[test]
    fn string_constant_selection_uses_the_code_histogram() {
        // 3 rows of "flu", 1 of "ague"; "pox" never occurs.
        let r = Relation::from_str_rows(&[
            &["an", "flu"],
            &["bob", "flu"],
            &["cal", "flu"],
            &["dee", "ague"],
        ]);
        let src = source(&[("R", &r)]);
        let e = Estimator::new(&src);
        let est = |s: &str| {
            e.estimate(&Expr::rel("R").select_const(2, Value::str(s)))
                .unwrap()
                .rows
        };
        assert!((est("flu") - 3.0).abs() < 1e-9, "flu = {}", est("flu"));
        assert!((est("ague") - 1.0).abs() < 1e-9);
        assert_eq!(est("pox"), 0.0, "outside the dictionary: provably empty");
        // Before the code histogram this fell back to 1/distinct = 2 rows.
    }

    #[test]
    fn union_and_diff_estimates_are_safe_upper_bounds() {
        let a = pairs(&[[1, 1], [2, 2]]);
        let b = pairs(&[[1, 1], [3, 3]]);
        let src = source(&[("A", &a), ("B", &b)]);
        let e = Estimator::new(&src);
        let u = e.estimate(&Expr::rel("A").union(Expr::rel("B"))).unwrap();
        assert!(u.rows >= 3.0, "union actual is 3, estimate {}", u.rows);
        let d = e.estimate(&Expr::rel("A").diff(Expr::rel("B"))).unwrap();
        assert_eq!(d.rows, 2.0, "difference upper bound = |A|");
    }

    #[test]
    fn group_count_estimate() {
        let rows: Vec<[i64; 2]> = (0..40).map(|i| [i % 4, i]).collect();
        let r = pairs(&rows);
        let src = source(&[("R", &r)]);
        let e = Estimator::new(&src);
        let g = e.estimate(&Expr::rel("R").group_count([1])).unwrap();
        assert!((g.rows - 4.0).abs() < 1e-9);
        assert_eq!(g.arity(), 2);
        let global = e.estimate(&Expr::rel("R").group_count([])).unwrap();
        assert_eq!(global.rows, 1.0);
    }
}
