//! Expression ASTs for the relational algebra (RA), the semijoin algebra
//! (SA), and the grouping/counting extension used in Section 5 of the paper.
//!
//! One AST covers all three languages; fragment-membership predicates
//! ([`Expr::is_ra`], [`Expr::is_sa_eq`], …) carve out the sub-languages of
//! Definitions 1 and 2:
//!
//! * **RA** (Definition 1): relation names, `∪`, `−`, `π`, `σᵢ₌ⱼ`, `σᵢ<ⱼ`,
//!   `τ_c` (constant-tagging), and `⋈θ` with θ a conjunction over
//!   `{=, ≠, <, >}`.
//! * **RA=**: RA where every join condition atom uses `=`.
//! * **SA** (Definition 2): the join replaced by the semijoin `⋉θ`.
//! * **SA=**: SA with equality-only conditions.
//! * **Extended RA** (Section 5): additionally `γ` (grouping with a count
//!   aggregate), used to show division has a *linear* expression once
//!   grouping/counting is available.
//!
//! Column indices are **1-based** throughout, matching the paper; the
//! evaluators translate to 0-based positions internally.

use crate::condition::Condition;
use crate::error::AlgebraError;
use sj_storage::{Schema, Value};

/// A selection predicate (Definition 1(4)), plus the derived constant form.
///
/// The paper notes that `σᵢ₌'c'(E)` is expressible as
/// `π₁..ₙ(σᵢ₌ₙ₊₁(τ_c(E)))`; we still provide it as a primitive for
/// convenience and desugar it in [`Expr::desugared`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Selection {
    /// `σᵢ₌ⱼ` — components i and j equal (1-based).
    Eq(usize, usize),
    /// `σᵢ<ⱼ` — component i strictly below component j (1-based).
    Lt(usize, usize),
    /// `σᵢ₌c` — component i equal to the constant c (derived form).
    EqConst(usize, Value),
}

impl Selection {
    /// The columns the predicate mentions.
    pub fn columns(&self) -> Vec<usize> {
        match self {
            Selection::Eq(i, j) | Selection::Lt(i, j) => vec![*i, *j],
            Selection::EqConst(i, _) => vec![*i],
        }
    }

    /// Validate column references against an arity.
    pub fn validate(&self, arity: usize) -> Result<(), usize> {
        for c in self.columns() {
            if c == 0 || c > arity {
                return Err(c);
            }
        }
        Ok(())
    }
}

/// An expression of the (extended) relational/semijoin algebra.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// A relation name `R ∈ S` (Definition 1(1)).
    Rel(String),
    /// Union `E₁ ∪ E₂` (same arity).
    Union(Box<Expr>, Box<Expr>),
    /// Difference `E₁ − E₂` (same arity).
    Diff(Box<Expr>, Box<Expr>),
    /// Projection `π_{i₁,…,i_k}(E)`, 1-based; columns may repeat/reorder.
    Project(Vec<usize>, Box<Expr>),
    /// Selection `σ(E)`.
    Select(Selection, Box<Expr>),
    /// Constant-tagging `τ_c(E)`: appends the constant `c` as a new last
    /// column (Definition 1(5)).
    ConstTag(Value, Box<Expr>),
    /// Join `E₁ ⋈θ E₂` of arity `n + m` (Definition 1(6)); cartesian
    /// product is the special case of the empty condition.
    Join(Condition, Box<Expr>, Box<Expr>),
    /// Semijoin `E₁ ⋉θ E₂` of arity `n` (Definition 2).
    Semijoin(Condition, Box<Expr>, Box<Expr>),
    /// Grouping with a count aggregate: `γ_{g₁,…,g_k; count(*)}(E)`, of
    /// arity `k + 1` — the group-by columns followed by the group count as
    /// an integer value. Extended RA only (Section 5).
    GroupCount(Vec<usize>, Box<Expr>),
}

impl Expr {
    // ----- constructors / builder API -------------------------------------

    /// A relation-name leaf.
    pub fn rel(name: impl Into<String>) -> Expr {
        Expr::Rel(name.into())
    }

    /// `self ∪ other`.
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn diff(self, other: Expr) -> Expr {
        Expr::Diff(Box::new(self), Box::new(other))
    }

    /// `π_cols(self)` (1-based columns).
    pub fn project(self, cols: impl IntoIterator<Item = usize>) -> Expr {
        Expr::Project(cols.into_iter().collect(), Box::new(self))
    }

    /// `σᵢ₌ⱼ(self)`.
    pub fn select_eq(self, i: usize, j: usize) -> Expr {
        Expr::Select(Selection::Eq(i, j), Box::new(self))
    }

    /// `σᵢ<ⱼ(self)`.
    pub fn select_lt(self, i: usize, j: usize) -> Expr {
        Expr::Select(Selection::Lt(i, j), Box::new(self))
    }

    /// `σᵢ₌c(self)` (derived form).
    pub fn select_const(self, i: usize, c: impl Into<Value>) -> Expr {
        Expr::Select(Selection::EqConst(i, c.into()), Box::new(self))
    }

    /// `τ_c(self)`.
    pub fn tag(self, c: impl Into<Value>) -> Expr {
        Expr::ConstTag(c.into(), Box::new(self))
    }

    /// `self ⋈θ other`.
    pub fn join(self, theta: Condition, other: Expr) -> Expr {
        Expr::Join(theta, Box::new(self), Box::new(other))
    }

    /// Natural equi-join on explicit column pairs.
    pub fn join_eq(self, pairs: impl IntoIterator<Item = (usize, usize)>, other: Expr) -> Expr {
        self.join(Condition::eq_pairs(pairs), other)
    }

    /// Cartesian product `self × other` (join on the empty condition).
    pub fn product(self, other: Expr) -> Expr {
        self.join(Condition::always(), other)
    }

    /// `self ⋉θ other`.
    pub fn semijoin(self, theta: Condition, other: Expr) -> Expr {
        Expr::Semijoin(theta, Box::new(self), Box::new(other))
    }

    /// Equi-semijoin on explicit column pairs.
    pub fn semijoin_eq(self, pairs: impl IntoIterator<Item = (usize, usize)>, other: Expr) -> Expr {
        self.semijoin(Condition::eq_pairs(pairs), other)
    }

    /// `γ_{cols; count}(self)` (extended RA).
    pub fn group_count(self, cols: impl IntoIterator<Item = usize>) -> Expr {
        Expr::GroupCount(cols.into_iter().collect(), Box::new(self))
    }

    /// Intersection, derived: `E₁ ∩ E₂ = E₁ − (E₁ − E₂)`.
    pub fn intersect(self, other: Expr) -> Expr {
        self.clone().diff(self.diff(other))
    }

    // ----- structural queries ---------------------------------------------

    /// Compute the arity of the expression over `schema`, validating every
    /// operator along the way (column bounds, union/difference arity
    /// agreement, condition bounds).
    pub fn arity(&self, schema: &Schema) -> Result<usize, AlgebraError> {
        match self {
            Expr::Rel(name) => schema
                .arity_of(name)
                .ok_or_else(|| AlgebraError::UnknownRelation(name.clone())),
            Expr::Union(a, b) | Expr::Diff(a, b) => {
                let (na, nb) = (a.arity(schema)?, b.arity(schema)?);
                if na != nb {
                    return Err(AlgebraError::ArityMismatch {
                        left: na,
                        right: nb,
                    });
                }
                Ok(na)
            }
            Expr::Project(cols, e) => {
                let n = e.arity(schema)?;
                for &c in cols {
                    if c == 0 || c > n {
                        return Err(AlgebraError::ColumnOutOfRange {
                            column: c,
                            arity: n,
                        });
                    }
                }
                Ok(cols.len())
            }
            Expr::Select(sel, e) => {
                let n = e.arity(schema)?;
                sel.validate(n)
                    .map_err(|c| AlgebraError::ColumnOutOfRange {
                        column: c,
                        arity: n,
                    })?;
                Ok(n)
            }
            Expr::ConstTag(_, e) => Ok(e.arity(schema)? + 1),
            Expr::Join(theta, a, b) => {
                let (na, nb) = (a.arity(schema)?, b.arity(schema)?);
                theta
                    .validate(na, nb)
                    .map_err(|(c, n)| AlgebraError::ColumnOutOfRange {
                        column: c,
                        arity: n,
                    })?;
                Ok(na + nb)
            }
            Expr::Semijoin(theta, a, b) => {
                let (na, nb) = (a.arity(schema)?, b.arity(schema)?);
                theta
                    .validate(na, nb)
                    .map_err(|(c, n)| AlgebraError::ColumnOutOfRange {
                        column: c,
                        arity: n,
                    })?;
                Ok(na)
            }
            Expr::GroupCount(cols, e) => {
                let n = e.arity(schema)?;
                for &c in cols {
                    if c == 0 || c > n {
                        return Err(AlgebraError::ColumnOutOfRange {
                            column: c,
                            arity: n,
                        });
                    }
                }
                Ok(cols.len() + 1)
            }
        }
    }

    /// Immediate children, left to right.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Rel(_) => vec![],
            Expr::Project(_, e)
            | Expr::Select(_, e)
            | Expr::ConstTag(_, e)
            | Expr::GroupCount(_, e) => vec![e],
            Expr::Union(a, b) | Expr::Diff(a, b) => vec![a, b],
            Expr::Join(_, a, b) | Expr::Semijoin(_, a, b) => vec![a, b],
        }
    }

    /// All subexpressions in **pre-order** (the expression itself first).
    /// The position in this list is the node's stable id used by the
    /// instrumented evaluator.
    pub fn subexpressions(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            out.push(e);
            for c in e.children() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Number of AST nodes.
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Height of the AST (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children().iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// The set `C` of constants appearing in the expression (from `τ_c` and
    /// `σᵢ₌c` nodes), sorted and deduplicated. An expression "with constants
    /// in C" (Section 2) is one whose constants are all members of C.
    pub fn constants(&self) -> Vec<Value> {
        let mut out = Vec::new();
        for e in self.subexpressions() {
            match e {
                Expr::ConstTag(c, _) => out.push(c.clone()),
                Expr::Select(Selection::EqConst(_, c), _) => out.push(c.clone()),
                _ => {}
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Relation names referenced, sorted and deduplicated.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self
            .subexpressions()
            .into_iter()
            .filter_map(|e| match e {
                Expr::Rel(n) => Some(n.as_str()),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    // ----- fragment membership ---------------------------------------------

    /// True iff the expression contains no semijoin and no grouping —
    /// i.e. belongs to RA (Definition 1).
    pub fn is_ra(&self) -> bool {
        self.subexpressions()
            .iter()
            .all(|e| !matches!(e, Expr::Semijoin(..) | Expr::GroupCount(..)))
    }

    /// True iff the expression is RA and every join condition is
    /// equality-only — the fragment RA=.
    pub fn is_ra_eq(&self) -> bool {
        self.is_ra()
            && self.subexpressions().iter().all(|e| match e {
                Expr::Join(theta, _, _) => theta.is_equi(),
                _ => true,
            })
    }

    /// True iff the expression contains no join and no grouping —
    /// i.e. belongs to SA (Definition 2).
    pub fn is_sa(&self) -> bool {
        self.subexpressions()
            .iter()
            .all(|e| !matches!(e, Expr::Join(..) | Expr::GroupCount(..)))
    }

    /// True iff the expression is SA and every semijoin condition is
    /// equality-only — the fragment SA=, the paper's central sub-language.
    pub fn is_sa_eq(&self) -> bool {
        self.is_sa()
            && self.subexpressions().iter().all(|e| match e {
                Expr::Semijoin(theta, _, _) => theta.is_equi(),
                _ => true,
            })
    }

    /// True iff the expression uses grouping/aggregation (extended RA,
    /// Section 5 of the paper).
    pub fn is_extended(&self) -> bool {
        self.subexpressions()
            .iter()
            .any(|e| matches!(e, Expr::GroupCount(..)))
    }

    /// Replace derived forms by paper primitives: `σᵢ₌c(E)` becomes
    /// `π₁,…,ₙ(σᵢ₌ₙ₊₁(τ_c(E)))` exactly as noted below Definition 1.
    /// The result contains only `Selection::Eq`/`Selection::Lt`.
    pub fn desugared(&self, schema: &Schema) -> Result<Expr, AlgebraError> {
        Ok(match self {
            Expr::Rel(n) => Expr::Rel(n.clone()),
            Expr::Union(a, b) => a.desugared(schema)?.union(b.desugared(schema)?),
            Expr::Diff(a, b) => a.desugared(schema)?.diff(b.desugared(schema)?),
            Expr::Project(cols, e) => e.desugared(schema)?.project(cols.clone()),
            Expr::Select(Selection::EqConst(i, c), e) => {
                let n = e.arity(schema)?;
                e.desugared(schema)?
                    .tag(c.clone())
                    .select_eq(*i, n + 1)
                    .project(1..=n)
            }
            Expr::Select(sel, e) => Expr::Select(sel.clone(), Box::new(e.desugared(schema)?)),
            Expr::ConstTag(c, e) => e.desugared(schema)?.tag(c.clone()),
            Expr::Join(t, a, b) => a.desugared(schema)?.join(t.clone(), b.desugared(schema)?),
            Expr::Semijoin(t, a, b) => a
                .desugared(schema)?
                .semijoin(t.clone(), b.desugared(schema)?),
            Expr::GroupCount(cols, e) => e.desugared(schema)?.group_count(cols.clone()),
        })
    }

    /// A structural hash of the expression: structurally identical
    /// subtrees hash identically (it is the derived [`Hash`] run through
    /// the workspace's [`FxHasher`](sj_storage::FxHasher)). The physical
    /// planner in `sj-eval` uses this to hash-cons the expression tree
    /// into a DAG, so that repeated subexpressions — `division_double_difference`
    /// mentions `R` three times and `π₁(R)` twice — are planned and
    /// evaluated exactly once. Collisions are possible as with any 64-bit
    /// hash; consumers must confirm with `==`.
    pub fn structural_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = sj_storage::FxHasher::default();
        self.hash(&mut h);
        h.finish()
    }

    /// A short operator label, used in instrumentation reports.
    pub fn label(&self) -> String {
        match self {
            Expr::Rel(n) => n.clone(),
            Expr::Union(..) => "union".into(),
            Expr::Diff(..) => "diff".into(),
            Expr::Project(cols, _) => format!(
                "project[{}]",
                cols.iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            Expr::Select(Selection::Eq(i, j), _) => format!("select[{i}={j}]"),
            Expr::Select(Selection::Lt(i, j), _) => format!("select[{i}<{j}]"),
            Expr::Select(Selection::EqConst(i, c), _) => format!("select[{i}='{c}']"),
            Expr::ConstTag(c, _) => format!("tag['{c}']"),
            Expr::Join(t, _, _) => format!("join[{t}]"),
            Expr::Semijoin(t, _, _) => format!("semijoin[{t}]"),
            Expr::GroupCount(cols, _) => format!(
                "gcount[{}]",
                cols.iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beer_schema() -> Schema {
        Schema::new([("Likes", 2), ("Serves", 2), ("Visits", 2)])
    }

    /// The SA= expression of Example 3:
    /// π₁(Visits ⋉₂₌₁ (π₁(Serves) − π₁(Serves ⋉₂₌₂ Likes))).
    fn example3() -> Expr {
        Expr::rel("Visits")
            .semijoin(
                Condition::eq(2, 1),
                Expr::rel("Serves").project([1]).diff(
                    Expr::rel("Serves")
                        .semijoin(Condition::eq(2, 2), Expr::rel("Likes"))
                        .project([1]),
                ),
            )
            .project([1])
    }

    #[test]
    fn example3_is_sa_eq_with_arity_1() {
        let e = example3();
        assert!(e.is_sa());
        assert!(e.is_sa_eq());
        assert!(!e.is_ra()); // it uses semijoins
        assert_eq!(e.arity(&beer_schema()).unwrap(), 1);
    }

    #[test]
    fn arity_checks_catch_errors() {
        let s = beer_schema();
        assert!(matches!(
            Expr::rel("Nope").arity(&s),
            Err(AlgebraError::UnknownRelation(_))
        ));
        assert!(matches!(
            Expr::rel("Likes")
                .union(Expr::rel("Likes").project([1]))
                .arity(&s),
            Err(AlgebraError::ArityMismatch { left: 2, right: 1 })
        ));
        assert!(matches!(
            Expr::rel("Likes").project([3]).arity(&s),
            Err(AlgebraError::ColumnOutOfRange {
                column: 3,
                arity: 2
            })
        ));
        assert!(matches!(
            Expr::rel("Likes").select_eq(1, 0).arity(&s),
            Err(AlgebraError::ColumnOutOfRange {
                column: 0,
                arity: 2
            })
        ));
        assert!(matches!(
            Expr::rel("Likes")
                .join(Condition::eq(3, 1), Expr::rel("Serves"))
                .arity(&s),
            Err(AlgebraError::ColumnOutOfRange {
                column: 3,
                arity: 2
            })
        ));
    }

    #[test]
    fn join_and_semijoin_arities() {
        let s = beer_schema();
        let j = Expr::rel("Likes").join(Condition::eq(2, 2), Expr::rel("Serves"));
        assert_eq!(j.arity(&s).unwrap(), 4);
        let sj = Expr::rel("Likes").semijoin(Condition::eq(2, 2), Expr::rel("Serves"));
        assert_eq!(sj.arity(&s).unwrap(), 2);
        let t = Expr::rel("Likes").tag(Value::int(9));
        assert_eq!(t.arity(&s).unwrap(), 3);
        let g = Expr::rel("Likes").group_count([1]);
        assert_eq!(g.arity(&s).unwrap(), 2);
    }

    #[test]
    fn fragments() {
        let s = beer_schema();
        let ra = Expr::rel("Likes").join(Condition::eq(2, 2), Expr::rel("Serves"));
        assert!(ra.is_ra() && ra.is_ra_eq() && !ra.is_sa());
        let ra_lt = Expr::rel("Likes").join(Condition::lt(2, 2), Expr::rel("Serves"));
        assert!(ra_lt.is_ra() && !ra_lt.is_ra_eq());
        let ext = Expr::rel("Likes").group_count([1]);
        assert!(ext.is_extended() && !ext.is_ra() && !ext.is_sa());
        assert_eq!(ext.arity(&s).unwrap(), 2);
        // A relation leaf belongs to every fragment.
        let leaf = Expr::rel("Likes");
        assert!(leaf.is_ra() && leaf.is_ra_eq() && leaf.is_sa() && leaf.is_sa_eq());
    }

    #[test]
    fn subexpression_traversal_preorder() {
        let e = example3();
        let subs = e.subexpressions();
        assert_eq!(subs.len(), e.node_count());
        assert_eq!(subs[0], &e); // pre-order: root first
                                 // π, ⋉, Visits, −, π, Serves, π, ⋉, Serves, Likes = 10 nodes
        assert_eq!(e.node_count(), 10);
        // π → ⋉ → − → π → ⋉ → Serves
        assert_eq!(e.depth(), 6);
    }

    #[test]
    fn constants_collected_sorted() {
        let e = Expr::rel("Likes")
            .tag(Value::int(5))
            .select_const(1, Value::int(2))
            .tag(Value::int(2));
        assert_eq!(e.constants(), vec![Value::int(2), Value::int(5)]);
        assert!(example3().constants().is_empty());
    }

    #[test]
    fn relation_names_sorted_dedup() {
        assert_eq!(
            example3().relation_names(),
            vec!["Likes", "Serves", "Visits"]
        );
    }

    #[test]
    fn desugar_select_const_matches_paper_note() {
        // σ₁₌'c'(E) = π₁..ₙ(σ₁₌ₙ₊₁(τ_c(E))) — check shape and arity.
        let s = Schema::new([("R", 2)]);
        let e = Expr::rel("R").select_const(1, Value::int(7));
        let d = e.desugared(&s).unwrap();
        assert_eq!(d.arity(&s).unwrap(), 2);
        match &d {
            Expr::Project(cols, inner) => {
                assert_eq!(cols, &vec![1, 2]);
                match inner.as_ref() {
                    Expr::Select(Selection::Eq(1, 3), tagged) => {
                        assert!(matches!(tagged.as_ref(), Expr::ConstTag(_, _)));
                    }
                    other => panic!("unexpected desugaring: {other:?}"),
                }
            }
            other => panic!("unexpected desugaring: {other:?}"),
        }
        // Constants are preserved by desugaring.
        assert_eq!(d.constants(), vec![Value::int(7)]);
    }

    #[test]
    fn intersect_derivation() {
        let s = beer_schema();
        let e = Expr::rel("Likes").intersect(Expr::rel("Serves"));
        assert_eq!(e.arity(&s).unwrap(), 2);
        assert!(e.is_ra());
    }

    #[test]
    fn structural_hash_agrees_with_equality() {
        let a = example3();
        let b = example3();
        assert_eq!(a.structural_hash(), b.structural_hash());
        // Shared subtrees hash equally from different occurrences.
        let e = Expr::rel("R").project([1]);
        let twice = e.clone().diff(e.clone());
        let subs = twice.subexpressions();
        assert_eq!(subs[1].structural_hash(), subs[3].structural_hash());
        // Different shapes (almost surely) hash differently.
        assert_ne!(
            Expr::rel("R").structural_hash(),
            Expr::rel("S").structural_hash()
        );
        assert_ne!(
            e.structural_hash(),
            Expr::rel("R").project([2]).structural_hash()
        );
    }

    #[test]
    fn labels() {
        assert_eq!(Expr::rel("R").label(), "R");
        assert_eq!(Expr::rel("R").project([1, 2]).label(), "project[1,2]");
        assert_eq!(
            Expr::rel("R")
                .join(Condition::eq(1, 1), Expr::rel("S"))
                .label(),
            "join[1=1]"
        );
    }
}
