//! # sj-stats — statistics and the cost model for cost-based selection
//!
//! The paper's contribution is a *complexity map*: which division /
//! set-join algorithms exist in which running-time class (Definition
//! 16), and which classes a query processor is condemned to inside
//! plain RA. Turning that map into an actual **algorithm choice**
//! needs one more ingredient the paper assumes away: knowledge of the
//! input. This crate supplies it:
//!
//! * [`TableStats::analyze`] — `ANALYZE` for a relation:
//!   per-column distinct counts, min/max, equi-width [`Histogram`]s,
//!   and the set-join view (group count and set-size moments) for
//!   binary relations.
//! * [`StatsCatalog`] — cached statistics per relation name with
//!   copy-on-write invalidation riding on `Database`'s `Arc`-backed
//!   storage; [`StatsSource`] is the read interface, with
//!   [`AnalyzeSource`] as the always-fresh alternative.
//! * [`CostModel`] — prices a [`ComplexityClass`] (which lives here,
//!   at the bottom of the crate graph, and is re-exported by
//!   `sj-setjoin`) plus input statistics into a scalar cost in
//!   tuple-operation units. The `sj-setjoin` registry uses it to pick
//!   the cheapest algorithm; the `sj-eval` planner uses it to gate
//!   hash machinery and partition parallelism.
//! * [`Estimator`] — cardinality estimation for algebra expressions
//!   (histogram selectivities, distinct-count join estimates capped by
//!   the AGM product bound, group-statistics division estimates —
//!   [`division_rows`], [`containment_selectivity`]).
//!
//! Everything is deterministic and exact-input-driven: `analyze` scans
//! the full relation (no sampling), so two runs over equal relations
//! produce identical statistics, estimates, and therefore identical
//! plans and algorithm picks.

pub mod calibrate;
pub mod catalog;
pub mod cost;
pub mod estimate;
pub mod histogram;
pub mod table;

pub use calibrate::{Calibrator, Observation};
pub use catalog::{AnalyzeSource, CatalogSource, StatsCatalog, StatsSource};
pub use cost::{ComplexityClass, CostModel, COST_PARAMS, COST_PARAM_NAMES};
pub use estimate::{
    containment_selectivity, cycle_agm_bound, division_rows, eq_join_rows_skewed, join_est,
    CardEst, ColEst, Estimator,
};
pub use histogram::{Histogram, StringHistogram};
pub use table::{ColumnStats, GroupStats, TableStats};
