//! A deliberately naive reference evaluator.
//!
//! Every operator is implemented by the most direct transcription of the
//! paper's semantics (Definitions 1 and 2) — nested loops, no hashing, no
//! indexes. It exists purely to cross-validate the optimized evaluator: the
//! property tests in this crate check `evaluate == evaluate_reference` on
//! random expressions and databases.

use crate::error::EvalError;
use sj_algebra::{Expr, Selection};
use sj_storage::{Database, Relation, Tuple, Value};

/// Evaluate `expr` on `db` with the naive reference semantics.
pub fn evaluate_reference(expr: &Expr, db: &Database) -> Result<Relation, EvalError> {
    expr.arity(&db.schema())?;
    Ok(go(expr, db))
}

fn go(expr: &Expr, db: &Database) -> Relation {
    match expr {
        Expr::Rel(name) => db.get(name).expect("validated").clone(),
        Expr::Union(a, b) => {
            let (ra, rb) = (go(a, db), go(b, db));
            let all = ra.iter().chain(rb.iter()).cloned();
            Relation::from_tuples(ra.arity(), all).expect("same arity")
        }
        Expr::Diff(a, b) => {
            let (ra, rb) = (go(a, db), go(b, db));
            Relation::from_tuples(
                ra.arity(),
                ra.iter().filter(|t| !rb.iter().any(|u| u == *t)).cloned(),
            )
            .expect("same arity")
        }
        Expr::Project(cols, a) => {
            let ra = go(a, db);
            let zero: Vec<usize> = cols.iter().map(|c| c - 1).collect();
            Relation::from_tuples(cols.len(), ra.iter().map(|t| t.project(&zero)))
                .expect("projection arity")
        }
        Expr::Select(sel, a) => {
            let ra = go(a, db);
            let keep = |t: &Tuple| match sel {
                Selection::Eq(i, j) => t[*i - 1] == t[*j - 1],
                Selection::Lt(i, j) => t[*i - 1] < t[*j - 1],
                Selection::EqConst(i, c) => &t[*i - 1] == c,
            };
            Relation::from_tuples(ra.arity(), ra.iter().filter(|t| keep(t)).cloned())
                .expect("selection arity")
        }
        Expr::ConstTag(c, a) => {
            let ra = go(a, db);
            Relation::from_tuples(ra.arity() + 1, ra.iter().map(|t| t.tag(c.clone())))
                .expect("tag arity")
        }
        Expr::Join(theta, a, b) => {
            let (ra, rb) = (go(a, db), go(b, db));
            let mut out = Vec::new();
            for t1 in &ra {
                for t2 in &rb {
                    if theta.eval(t1.values(), t2.values()) {
                        out.push(t1.concat(t2));
                    }
                }
            }
            Relation::from_tuples(ra.arity() + rb.arity(), out).expect("join arity")
        }
        Expr::Semijoin(theta, a, b) => {
            let (ra, rb) = (go(a, db), go(b, db));
            Relation::from_tuples(
                ra.arity(),
                ra.iter()
                    .filter(|t1| rb.iter().any(|t2| theta.eval(t1.values(), t2.values())))
                    .cloned(),
            )
            .expect("semijoin arity")
        }
        Expr::GroupCount(cols, a) => {
            let ra = go(a, db);
            let zero: Vec<usize> = cols.iter().map(|c| c - 1).collect();
            // Quadratic grouping: for each distinct key, count matches.
            let keys: Vec<Tuple> = {
                let mut ks: Vec<Tuple> = ra.iter().map(|t| t.project(&zero)).collect();
                ks.sort_unstable();
                ks.dedup();
                ks
            };
            let mut out: Vec<Tuple> = keys
                .into_iter()
                .map(|k| {
                    let n = ra.iter().filter(|t| t.project(&zero) == k).count();
                    k.tag(Value::int(n as i64))
                })
                .collect();
            if cols.is_empty() && out.is_empty() {
                out.push(Tuple::new(vec![Value::int(0)]));
            }
            Relation::from_tuples(cols.len() + 1, out).expect("group arity")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plain::evaluate;
    use sj_algebra::Condition;

    #[test]
    fn reference_agrees_on_hand_examples() {
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&[&[1, 2], &[2, 3], &[3, 3]]));
        db.set("S", Relation::from_int_rows(&[&[2, 9], &[3, 9]]));
        for e in [
            Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S")),
            Expr::rel("R").semijoin(Condition::eq(2, 1).and_eq(1, 1), Expr::rel("S")),
            Expr::rel("R")
                .project([2, 2])
                .union(Expr::rel("S").project([1, 2])),
            Expr::rel("R").diff(Expr::rel("S")),
            Expr::rel("R").select_eq(1, 2).tag(7),
            Expr::rel("R").group_count([2]),
            Expr::rel("R").join(
                Condition::lt(1, 2).and(2, sj_algebra::CompOp::Neq, 1),
                Expr::rel("S"),
            ),
        ] {
            assert_eq!(
                evaluate(&e, &db).unwrap(),
                evaluate_reference(&e, &db).unwrap(),
                "expression: {e}"
            );
        }
    }
}
