//! # sj-setjoin — division and set joins as first-class operators
//!
//! The operators the paper is *about*, implemented directly (outside the
//! relational algebra) with the classical algorithm families:
//!
//! * [`division`] — `R(A,B) ÷ S(B)` in both containment and equality
//!   semantics, via nested loops, sort-merge, Graefe's hash-division, and
//!   counting (the Section 5 strategy). All linear-ish except the
//!   deliberate nested-loop baseline — the contrast Proposition 26 proves
//!   is unavoidable *inside* RA.
//! * [`setjoin`] — set-containment / set-equality / subset /
//!   intersection-nonempty joins, via nested loops, Bloom-signature
//!   filtering, group hashing, and the equijoin reduction for `∩ ≠ ∅`.
//!
//! Every algorithm is cross-validated against the others and against the
//! RA plans of `sj_algebra::division` evaluated by `sj-eval`.
//!
//! All algorithms are also available through the [`registry`] — trait
//! objects behind [`registry::SetJoinAlgorithm`] /
//! [`registry::DivisionAlgorithm`] with the deterministic
//! [`registry::Registry::auto_set_join`] and
//! [`registry::Registry::auto_division`] selectors. The free functions
//! below remain the convenient direct entry points; prefer the registry
//! (or `sj-eval`'s `Engine`, which routes through it) when the algorithm
//! choice should be configuration rather than code.

pub mod columnar;
pub mod division;
pub mod general;
pub mod inverted;
pub mod parallel;
pub mod registry;
pub mod setjoin;
pub mod wide_signature;

pub use columnar::{columnar_signature_set_join, group_ranges, joint_codes};
pub use division::{
    counting_division, divide, hash_division, nested_loop_division, sort_merge_division,
    DivisionSemantics,
};
pub use general::divide_general;
pub use inverted::inverted_index_set_join;
pub use parallel::{
    parallel_hash_division, parallel_signature_set_join, parallel_signature_set_join_rowwise,
};
pub use registry::{
    run_division_traced, run_set_join_traced, ComplexityClass, DivisionAlgorithm, Registry,
    SetJoinAlgorithm,
};
pub use setjoin::{
    group_sets, hash_set_equality_join, intersect_join_via_equijoin, nested_loop_set_join,
    set_join, signature_set_join, signature_set_join_rowwise, SetPredicate,
};
pub use wide_signature::{filter_survivors, wide_signature_set_join, WideSignature};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use sj_storage::{Relation, Tuple};

    fn arb_pairs(max_key: i64, max_val: i64, len: usize) -> impl Strategy<Value = Relation> {
        proptest::collection::vec((1..=max_key, 1..=max_val), 0..len).prop_map(|rows| {
            Relation::from_tuples(2, rows.into_iter().map(|(a, b)| Tuple::from_ints(&[a, b])))
                .unwrap()
        })
    }

    fn arb_divisor(max_val: i64, len: usize) -> impl Strategy<Value = Relation> {
        proptest::collection::vec(1..=max_val, 0..len).prop_map(|vals| {
            Relation::from_tuples(1, vals.into_iter().map(|v| Tuple::from_ints(&[v]))).unwrap()
        })
    }

    /// Brute-force division oracle.
    fn oracle_divide(r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        let divisor: Vec<_> = s.iter().map(|t| t[0].clone()).collect();
        let mut keys: Vec<_> = r.iter().map(|t| t[0].clone()).collect();
        keys.sort();
        keys.dedup();
        let out = keys.into_iter().filter(|a| {
            let bs: Vec<_> = r
                .iter()
                .filter(|t| &t[0] == a)
                .map(|t| t[1].clone())
                .collect();
            match sem {
                DivisionSemantics::Containment => divisor.iter().all(|d| bs.contains(d)),
                DivisionSemantics::Equality => {
                    divisor.iter().all(|d| bs.contains(d)) && bs.len() == divisor.len()
                }
            }
        });
        Relation::from_tuples(1, out.map(|a| Tuple::new(vec![a]))).unwrap()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every division algorithm equals the brute-force oracle, both
        /// semantics.
        #[test]
        fn division_algorithms_agree(
            r in arb_pairs(6, 6, 24),
            s in arb_divisor(6, 6),
        ) {
            for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
                let want = oracle_divide(&r, &s, sem);
                for (name, alg) in division::all_algorithms() {
                    prop_assert_eq!(
                        alg(&r, &s, sem),
                        want.clone(),
                        "{} under {:?}", name, sem
                    );
                }
            }
        }

        /// Signature and hash set joins equal the nested-loop baseline on
        /// every predicate.
        #[test]
        fn set_join_algorithms_agree(
            r in arb_pairs(5, 8, 20),
            s in arb_pairs(5, 8, 20),
        ) {
            use SetPredicate::*;
            for pred in [Contains, ContainedIn, Equals, IntersectsNonempty] {
                let want = nested_loop_set_join(&r, &s, pred);
                prop_assert_eq!(
                    signature_set_join(&r, &s, pred),
                    want.clone(),
                    "signature on {:?}", pred
                );
                prop_assert_eq!(set_join(&r, &s, pred), want, "default on {:?}", pred);
            }
        }

        /// Division is the set-containment join against a single-group
        /// divisor: R ÷ S = π_A(R ⋈_{B ⊇ D} {0} × S).
        #[test]
        fn division_is_a_set_join(
            r in arb_pairs(5, 6, 20),
            s in arb_divisor(6, 5),
        ) {
            prop_assume!(!s.is_empty());
            // Lift the divisor into a single C-group keyed 0.
            let lifted = Relation::from_tuples(
                2,
                s.iter().map(|t| Tuple::new(vec![
                    sj_storage::Value::int(0), t[0].clone(),
                ])),
            ).unwrap();
            let join = set_join(&r, &lifted, SetPredicate::Contains);
            let via_join = Relation::from_tuples(
                1,
                join.iter().map(|t| Tuple::new(vec![t[0].clone()])),
            ).unwrap();
            prop_assert_eq!(
                via_join,
                divide(&r, &s, DivisionSemantics::Containment)
            );
        }

        /// The inverted-index join equals the nested-loop baseline.
        #[test]
        fn inverted_index_agrees(
            r in arb_pairs(5, 8, 20),
            s in arb_pairs(5, 8, 20),
        ) {
            prop_assert_eq!(
                inverted_index_set_join(&r, &s),
                nested_loop_set_join(&r, &s, SetPredicate::Contains)
            );
        }

        /// Wide signatures are exact at every width.
        #[test]
        fn wide_signature_agrees(
            r in arb_pairs(5, 8, 20),
            s in arb_pairs(5, 8, 20),
            words in 1usize..4,
        ) {
            for pred in [SetPredicate::Contains, SetPredicate::Equals] {
                prop_assert_eq!(
                    wide_signature_set_join(&r, &s, pred, words),
                    nested_loop_set_join(&r, &s, pred),
                    "{:?} width {}", pred, words
                );
            }
        }

        /// Generalized division on a single key column reduces to binary
        /// division.
        #[test]
        fn divide_general_reduces(
            r in arb_pairs(6, 6, 24),
            s in arb_divisor(6, 6),
        ) {
            for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
                prop_assert_eq!(
                    divide_general(&r, &[1], 2, &s, sem),
                    divide(&r, &s, sem),
                    "{:?}", sem
                );
            }
        }

        /// Containment in both directions is equality.
        #[test]
        fn contains_both_ways_is_equals(
            r in arb_pairs(4, 6, 16),
            s in arb_pairs(4, 6, 16),
        ) {
            let fwd = set_join(&r, &s, SetPredicate::Contains);
            let bwd = set_join(&r, &s, SetPredicate::ContainedIn);
            let eq = set_join(&r, &s, SetPredicate::Equals);
            let both = fwd.intersection(&bwd).unwrap();
            prop_assert_eq!(both, eq);
        }
    }
}
