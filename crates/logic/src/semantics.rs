//! Model-theoretic semantics of GF formulas over databases.
//!
//! Satisfaction is standard first-order, interpreted over the active domain
//! (plus any constants supplied in assignments); the guarded quantifier
//! ranges over the tuples of its guard relation, which keeps evaluation
//! terminating and cheap without a separate domain enumeration.

use crate::formula::{Formula, Var};
use sj_storage::{Database, FxHashMap, Tuple, Value};

/// A variable assignment.
pub type Assignment = FxHashMap<Var, Value>;

/// Does `db, env ⊨ f`? All free variables of `f` must be bound in `env`
/// (unbound variables panic — callers validate with
/// [`Formula::free_vars`]).
pub fn satisfies(db: &Database, f: &Formula, env: &Assignment) -> bool {
    match f {
        Formula::Bool(b) => *b,
        Formula::Eq(x, y) => env[x] == env[y],
        Formula::Lt(x, y) => env[x] < env[y],
        Formula::EqConst(x, c) => &env[x] == c,
        Formula::Rel(r, args) => match db.get(r) {
            None => false,
            Some(rel) => {
                let t: Tuple = args.iter().map(|v| env[v].clone()).collect();
                rel.contains(&t)
            }
        },
        Formula::Not(g) => !satisfies(db, g, env),
        Formula::And(a, b) => satisfies(db, a, env) && satisfies(db, b, env),
        Formula::Or(a, b) => satisfies(db, a, env) || satisfies(db, b, env),
        Formula::Implies(a, b) => !satisfies(db, a, env) || satisfies(db, b, env),
        Formula::Iff(a, b) => satisfies(db, a, env) == satisfies(db, b, env),
        Formula::Exists {
            vars,
            guard_rel,
            guard_args,
            body,
        } => {
            let rel = match db.get(guard_rel) {
                None => return false,
                Some(r) => r,
            };
            'tuples: for t in rel {
                if t.arity() != guard_args.len() {
                    continue;
                }
                // Match the guard pattern against the tuple, binding the
                // quantified variables consistently.
                let mut extended = env.clone();
                for (pos, v) in guard_args.iter().enumerate() {
                    let val = &t[pos];
                    if vars.contains(v) {
                        match extended.get(v) {
                            Some(bound) if bound != val => continue 'tuples,
                            Some(_) => {}
                            None => {
                                extended.insert(v.clone(), val.clone());
                            }
                        }
                    } else if &env[v] != val {
                        continue 'tuples;
                    }
                }
                // Re-check repeated quantified variables bound left-to-right:
                // handled above because a second occurrence sees the binding.
                if satisfies(db, body, &extended) {
                    return true;
                }
            }
            false
        }
    }
}

/// Evaluate a formula as a query: the set of tuples `d̄` over `candidates`
/// (one candidate list per free variable, in `free_vars` order) such that
/// `db ⊨ f(d̄)`. Used by the Theorem 8 tests to enumerate
/// `{d̄ | D ⊨ φ(d̄)}` over the active domain plus sentinels.
pub fn eval_query(
    db: &Database,
    f: &Formula,
    free_vars: &[Var],
    candidates: &[Value],
) -> Vec<Tuple> {
    let k = free_vars.len();
    let mut out = Vec::new();
    let mut idx = vec![0usize; k];
    if candidates.is_empty() && k > 0 {
        return out;
    }
    loop {
        let env: Assignment = free_vars
            .iter()
            .zip(idx.iter())
            .map(|(v, &i)| (v.clone(), candidates[i].clone()))
            .collect();
        if satisfies(db, f, &env) {
            out.push(idx.iter().map(|&i| candidates[i].clone()).collect());
        }
        // Odometer increment.
        let mut pos = k;
        loop {
            if pos == 0 {
                out.sort_unstable();
                out.dedup();
                return out;
            }
            pos -= 1;
            idx[pos] += 1;
            if idx[pos] < candidates.len() {
                break;
            }
            idx[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::example7_lousy_bar;
    use sj_storage::Relation;

    fn env(pairs: &[(&str, Value)]) -> Assignment {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn beer_db() -> Database {
        let mut db = Database::new();
        db.set(
            "Visits",
            Relation::from_str_rows(&[&["an", "bad bar"], &["bob", "good bar"]]),
        );
        db.set(
            "Serves",
            Relation::from_str_rows(&[&["bad bar", "swill"], &["good bar", "nectar"]]),
        );
        db.set("Likes", Relation::from_str_rows(&[&["bob", "nectar"]]));
        db
    }

    #[test]
    fn atoms() {
        let db = beer_db();
        let e = env(&[("x", Value::int(1)), ("y", Value::int(2))]);
        assert!(!satisfies(&db, &Formula::Eq("x".into(), "y".into()), &e));
        assert!(satisfies(&db, &Formula::Lt("x".into(), "y".into()), &e));
        assert!(satisfies(
            &db,
            &Formula::EqConst("x".into(), Value::int(1)),
            &e
        ));
        assert!(satisfies(&db, &Formula::Bool(true), &e));
        assert!(!satisfies(&db, &Formula::Bool(false), &e));
    }

    #[test]
    fn relation_atom() {
        let db = beer_db();
        let e = env(&[("d", Value::str("bob")), ("b", Value::str("nectar"))]);
        assert!(satisfies(
            &db,
            &Formula::Rel("Likes".into(), vec!["d".into(), "b".into()]),
            &e
        ));
        assert!(!satisfies(
            &db,
            &Formula::Rel("Likes".into(), vec!["b".into(), "d".into()]),
            &e
        ));
        assert!(!satisfies(
            &db,
            &Formula::Rel("Missing".into(), vec!["d".into(), "b".into()]),
            &e
        ));
    }

    #[test]
    fn connectives() {
        let db = beer_db();
        let e = env(&[("x", Value::int(1))]);
        let t = Formula::Bool(true);
        let f = Formula::Bool(false);
        assert!(satisfies(&db, &t.clone().or(f.clone()), &e));
        assert!(!satisfies(&db, &t.clone().and(f.clone()), &e));
        assert!(satisfies(&db, &f.clone().implies(t.clone()), &e));
        assert!(!satisfies(&db, &t.clone().implies(f.clone()), &e));
        assert!(satisfies(&db, &f.clone().iff(f.clone()), &e));
        assert!(!satisfies(&db, &t.clone().iff(f.clone()), &e));
        assert!(satisfies(&db, &f.not(), &e));
    }

    #[test]
    fn example7_identifies_lousy_bar_visitors() {
        let db = beer_db();
        let phi = example7_lousy_bar();
        assert!(satisfies(&db, &phi, &env(&[("x", Value::str("an"))])));
        assert!(!satisfies(&db, &phi, &env(&[("x", Value::str("bob"))])));
    }

    #[test]
    fn eval_query_enumerates() {
        let db = beer_db();
        let phi = example7_lousy_bar();
        let out = eval_query(&db, &phi, &["x".into()], &db.active_domain());
        assert_eq!(out, vec![Tuple::from_strs(&["an"])]);
    }

    #[test]
    fn guard_with_repeated_variables() {
        // ∃y R(y, y): holds iff R has a diagonal tuple.
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&[&[1, 2], &[3, 3]]));
        let phi = Formula::exists(["y"], "R", ["y", "y"], Formula::Bool(true));
        assert!(satisfies(&db, &phi, &Assignment::default()));
        let mut db2 = Database::new();
        db2.set("R", Relation::from_int_rows(&[&[1, 2]]));
        assert!(!satisfies(&db2, &phi, &Assignment::default()));
    }

    #[test]
    fn guard_pins_free_variables() {
        // ∃y Visits(x, y) with x = "an" must bind y only to an's bars.
        let db = beer_db();
        let phi = Formula::exists(
            ["y"],
            "Visits",
            ["x", "y"],
            Formula::EqConst("y".into(), Value::str("good bar")),
        );
        assert!(!satisfies(&db, &phi, &env(&[("x", Value::str("an"))])));
        assert!(satisfies(&db, &phi, &env(&[("x", Value::str("bob"))])));
    }

    #[test]
    fn eval_query_nullary() {
        let db = beer_db();
        let phi = Formula::exists(["w", "z"], "Likes", ["w", "z"], Formula::Bool(true));
        let out = eval_query(&db, &phi, &[], &db.active_domain());
        assert_eq!(out, vec![Tuple::empty()]);
        let out2 = eval_query(&db, &phi.not(), &[], &db.active_domain());
        assert!(out2.is_empty());
    }
}
