//! Relational division `R(A, B) ÷ S(B)` — "the prototypical set join"
//! (Codd; Section 1 of the paper) — with the four classical algorithm
//! families surveyed by Graefe ("Relational division: four algorithms and
//! their performance", ICDE 1989 — reference \[11\] of the paper):
//!
//! | algorithm | paper-era name | complexity |
//! |---|---|---|
//! | [`nested_loop_division`] | naive / nested loops | O(\|πA R\| · \|S\| · log \|R\|) |
//! | [`sort_merge_division`] | merge division | O(sort + \|R\| + \|S\|) |
//! | [`hash_division`] | Graefe's hash-division | O(\|R\| + \|S\|) expected |
//! | [`counting_division`] | aggregate/counting division | O(\|R\| + \|S\|) expected |
//!
//! The paper proves (Proposition 26) that *inside plain RA* every plan for
//! this operator is quadratic, while the counting approach — the Section 5
//! grouping/aggregation expression — is linear. These direct
//! implementations are the baselines the benchmarks compare against the RA
//! plans of `sj_algebra::division`.
//!
//! Both division semantics from the paper's introduction are supported:
//! **containment** (`{b | R(a,b)} ⊇ S`) and **equality**
//! (`{b | R(a,b)} = S`).

use sj_storage::{FxHashMap, FxHashSet, Relation, Tuple, Value};

/// Which comparison the division applies to each A-group's B-set.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum DivisionSemantics {
    /// `{ a | {b : R(a,b)} ⊇ S }` — classical division.
    Containment,
    /// `{ a | {b : R(a,b)} = S }` — the set-equality variant.
    Equality,
}

fn check_shapes(r: &Relation, s: &Relation) {
    assert_eq!(r.arity(), 2, "dividend must be binary R(A,B)");
    assert_eq!(s.arity(), 1, "divisor must be unary S(B)");
}

/// Division by the default algorithm ([`hash_division`]).
///
/// Thin wrapper kept for convenience; algorithm-aware callers should go
/// through [`crate::registry::Registry`] (or `sj-eval`'s `Engine`), where
/// the choice is configuration and the `auto` selector consults input
/// statistics.
pub fn divide(r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
    hash_division(r, s, sem)
}

/// Nested-loop division: for every candidate A-value, probe `R` for every
/// divisor value. The quadratic baseline (deliberately so — it mirrors the
/// work pattern of the quadratic RA plans).
pub fn nested_loop_division(r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
    check_shapes(r, s);
    let mut candidates: Vec<Value> = r.iter().map(|t| t[0].clone()).collect();
    candidates.dedup(); // canonical order ⇒ equal As adjacent
    let divisor: Vec<&Value> = s.iter().map(|t| &t[0]).collect();
    let mut out: Vec<Tuple> = Vec::new();
    'cand: for a in candidates {
        for b in &divisor {
            let probe = Tuple::new(vec![a.clone(), (*b).clone()]);
            if !r.contains(&probe) {
                continue 'cand;
            }
        }
        if sem == DivisionSemantics::Equality {
            // No extra B's allowed: count the A-group size.
            let group = r.iter().filter(|t| t[0] == a).count();
            if group != divisor.len() {
                continue 'cand;
            }
        }
        out.push(Tuple::new(vec![a]));
    }
    Relation::from_tuples(1, out).expect("unary output")
}

/// Sort-merge division. `Relation` storage is already sorted by (A, B), so
/// each A-group's B-list appears in order; one merge pass against the
/// (sorted) divisor decides each group. Linear after sorting — this is the
/// O(n log n) strategy the paper's footnote 1 refers to.
pub fn sort_merge_division(r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
    check_shapes(r, s);
    let divisor: Vec<&Value> = s.iter().map(|t| &t[0]).collect();
    let tuples = r.tuples();
    let mut out: Vec<Tuple> = Vec::new();
    let mut i = 0;
    while i < tuples.len() {
        let a = &tuples[i][0];
        // Extent of this A-group.
        let mut j = i;
        while j < tuples.len() && &tuples[j][0] == a {
            j += 1;
        }
        // Merge the group's sorted B-run against the sorted divisor.
        let mut matched = 0usize;
        let mut gi = i;
        let mut di = 0usize;
        while gi < j && di < divisor.len() {
            match tuples[gi][1].cmp(divisor[di]) {
                std::cmp::Ordering::Less => gi += 1,
                std::cmp::Ordering::Greater => di += 1,
                std::cmp::Ordering::Equal => {
                    matched += 1;
                    gi += 1;
                    di += 1;
                }
            }
        }
        let group_size = j - i;
        let qualifies = match sem {
            DivisionSemantics::Containment => matched == divisor.len(),
            DivisionSemantics::Equality => matched == divisor.len() && group_size == divisor.len(),
        };
        if qualifies {
            out.push(Tuple::new(vec![a.clone()]));
        }
        i = j;
    }
    Relation::from_tuples(1, out).expect("unary output")
}

/// Graefe's hash-division: a hash table over the divisor assigns each
/// divisor value an index; each candidate A-value keeps a bitmap of the
/// divisor values it has covered (plus an "extra B" flag for the equality
/// variant). One pass over `R`, one table, expected linear time.
pub fn hash_division(r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
    check_shapes(r, s);
    let mut divisor_index: FxHashMap<&Value, usize> = FxHashMap::default();
    for (ix, t) in s.iter().enumerate() {
        divisor_index.insert(&t[0], ix);
    }
    let words = divisor_index.len().div_ceil(64);
    struct Group {
        bitmap: Vec<u64>,
        covered: usize,
        extra: bool,
    }
    let mut groups: FxHashMap<&Value, Group> = FxHashMap::default();
    for t in r {
        let g = groups.entry(&t[0]).or_insert_with(|| Group {
            bitmap: vec![0; words],
            covered: 0,
            extra: false,
        });
        match divisor_index.get(&t[1]) {
            Some(&ix) => {
                let (w, bit) = (ix / 64, 1u64 << (ix % 64));
                if g.bitmap[w] & bit == 0 {
                    g.bitmap[w] |= bit;
                    g.covered += 1;
                }
            }
            None => g.extra = true,
        }
    }
    let need = divisor_index.len();
    let out = groups.into_iter().filter_map(|(a, g)| {
        let ok = match sem {
            DivisionSemantics::Containment => g.covered == need,
            DivisionSemantics::Equality => g.covered == need && !g.extra,
        };
        ok.then(|| Tuple::new(vec![a.clone()]))
    });
    Relation::from_tuples(1, out).expect("unary output")
}

/// Counting (aggregate) division — the direct-execution counterpart of the
/// paper's Section 5 expression
/// `π_A(γ_{A,count}(R ⋈_{B=C} S) ⋈_{count=count} γ_{count}(S))`:
/// count, per A, the B's that fall in the divisor and compare with |S|.
/// Unlike the *expression* (whose inner join drops groups with zero
/// matches), the direct implementation handles the empty divisor:
/// `R ÷ ∅ = π_A(R)` under containment.
pub fn counting_division(r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
    check_shapes(r, s);
    let divisor: FxHashSet<&Value> = s.iter().map(|t| &t[0]).collect();
    // matched and total counts per A (distinct (A,B) guaranteed by set
    // semantics).
    let mut counts: FxHashMap<&Value, (usize, usize)> = FxHashMap::default();
    for t in r {
        let e = counts.entry(&t[0]).or_insert((0, 0));
        if divisor.contains(&t[1]) {
            e.0 += 1;
        }
        e.1 += 1;
    }
    let need = divisor.len();
    let out = counts.into_iter().filter_map(|(a, (matched, total))| {
        let ok = match sem {
            DivisionSemantics::Containment => matched == need,
            DivisionSemantics::Equality => matched == need && total == need,
        };
        ok.then(|| Tuple::new(vec![a.clone()]))
    });
    Relation::from_tuples(1, out).expect("unary output")
}

/// A division algorithm as a plain function pointer. The trait-object
/// form lives in [`crate::registry::DivisionAlgorithm`]; this alias
/// remains for the benchmark/test helpers below.
pub type DivisionFn = fn(&Relation, &Relation, DivisionSemantics) -> Relation;

/// All four algorithms, labeled — convenient for the shoot-out benchmark
/// and the cross-validation tests. Thin wrapper over the same entries
/// [`crate::registry::Registry::standard`] registers.
pub fn all_algorithms() -> Vec<(&'static str, DivisionFn)> {
    vec![
        ("nested-loop", nested_loop_division),
        ("sort-merge", sort_merge_division),
        ("hash", hash_division),
        ("counting", counting_division),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use DivisionSemantics::{Containment, Equality};

    fn r() -> Relation {
        Relation::from_int_rows(&[
            &[1, 7],
            &[1, 8],
            &[1, 9], // superset of S
            &[2, 7],
            &[2, 8], // exactly S
            &[3, 7], // proper subset
            &[4, 9], // disjoint
        ])
    }

    fn s() -> Relation {
        Relation::from_int_rows(&[&[7], &[8]])
    }

    #[test]
    fn containment_division() {
        for (name, alg) in all_algorithms() {
            assert_eq!(
                alg(&r(), &s(), Containment),
                Relation::from_int_rows(&[&[1], &[2]]),
                "{name}"
            );
        }
    }

    #[test]
    fn equality_division() {
        for (name, alg) in all_algorithms() {
            assert_eq!(
                alg(&r(), &s(), Equality),
                Relation::from_int_rows(&[&[2]]),
                "{name}"
            );
        }
    }

    #[test]
    fn empty_divisor() {
        let empty = Relation::empty(1);
        for (name, alg) in all_algorithms() {
            // Containment: every A qualifies (⊇ ∅).
            assert_eq!(
                alg(&r(), &empty, Containment),
                Relation::from_int_rows(&[&[1], &[2], &[3], &[4]]),
                "{name} containment"
            );
            // Equality: no A has an empty B-set.
            assert!(alg(&r(), &empty, Equality).is_empty(), "{name} equality");
        }
    }

    #[test]
    fn empty_dividend() {
        let empty_r = Relation::empty(2);
        for (name, alg) in all_algorithms() {
            assert!(alg(&empty_r, &s(), Containment).is_empty(), "{name}");
            assert!(alg(&empty_r, &s(), Equality).is_empty(), "{name}");
        }
    }

    #[test]
    fn divisor_value_absent_from_dividend() {
        let s99 = Relation::from_int_rows(&[&[7], &[99]]);
        for (name, alg) in all_algorithms() {
            assert!(alg(&r(), &s99, Containment).is_empty(), "{name}");
        }
    }

    #[test]
    fn fig1_person_divided_by_symptoms() {
        // Fig. 1 of the paper: Person ÷ Symptoms = {An, Bob}.
        let person = Relation::from_str_rows(&[
            &["An", "headache"],
            &["An", "sore throat"],
            &["An", "neck pain"],
            &["Bob", "headache"],
            &["Bob", "sore throat"],
            &["Bob", "memory loss"],
            &["Bob", "neck pain"],
            &["Carol", "headache"],
        ]);
        let symptoms = Relation::from_str_rows(&[&["headache"], &["neck pain"]]);
        for (name, alg) in all_algorithms() {
            assert_eq!(
                alg(&person, &symptoms, Containment),
                Relation::from_str_rows(&[&["An"], &["Bob"]]),
                "{name}"
            );
        }
    }

    #[test]
    fn agrees_with_ra_plan() {
        use sj_eval::evaluate;
        let mut db = sj_storage::Database::new();
        db.set("R", r());
        db.set("S", s());
        let plan = sj_algebra::division::division_double_difference("R", "S");
        let via_ra = evaluate(&plan, &db).unwrap();
        assert_eq!(via_ra, divide(&r(), &s(), Containment));
        let eq_plan = sj_algebra::division::division_equality("R", "S");
        assert_eq!(
            evaluate(&eq_plan, &db).unwrap(),
            divide(&r(), &s(), Equality)
        );
    }

    #[test]
    #[should_panic(expected = "dividend must be binary")]
    fn wrong_dividend_arity_panics() {
        divide(&Relation::empty(3), &Relation::empty(1), Containment);
    }

    #[test]
    #[should_panic(expected = "divisor must be unary")]
    fn wrong_divisor_arity_panics() {
        divide(&Relation::empty(2), &Relation::empty(2), Containment);
    }
}
