//! Workspace observability suite: instrumentation must be
//! **differentially invisible** — turning [`Instrument::Profile`] on or
//! installing a trace collector never changes an answer, across both
//! [`Execution`] modes and every tested worker count — while the
//! rendered artifacts (planned reports, query profiles, served traces,
//! the Prometheus-style exposition) keep the shape golden tests can
//! pin.
//!
//! The tested worker counts default to `{1, 2, 4, 8}`;
//! `SETJOINS_TEST_THREADS` (a comma-separated list or a single number)
//! narrows them, which CI uses to run the suite at `4`.

use setjoins::obs::RingCollector;
use setjoins::prelude::*;
use setjoins::server::{Server, ServerConfig};
use sj_algebra::division;
use sj_workload::DivisionWorkload;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Every test here serializes on one lock: the trace collector is a
/// process-wide resource, so a test that installs one would otherwise
/// capture spans emitted by its concurrently-running neighbours.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Worker counts under test (see module docs).
fn thread_counts() -> Vec<usize> {
    match std::env::var("SETJOINS_TEST_THREADS") {
        Ok(s) => {
            let counts: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect();
            assert!(
                !counts.is_empty(),
                "SETJOINS_TEST_THREADS={s:?} has no usable counts"
            );
            counts
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn division_db() -> Database {
    DivisionWorkload {
        groups: 160,
        divisor_size: 8,
        containment_fraction: 0.3,
        extra_per_group: 3,
        noise_domain: 64,
        seed: 0x0B5E7,
    }
    .database()
}

/// The tentpole invariant: `Instrument::Off`, `Instrument::Profile`,
/// and a run under an installed [`RingCollector`] produce byte-identical
/// relations on the paper's division plans, for both execution modes at
/// every tested worker count.
#[test]
fn observability_is_differentially_invisible() {
    let _guard = lock();
    let db = division_db();
    let plans = [
        division::division_double_difference("R", "S"),
        division::division_counting("R", "S"),
        division::division_equality("R", "S"),
    ];
    for e in &plans {
        let reference = Engine::new(db.clone())
            .query(e.clone())
            .run()
            .unwrap()
            .relation;
        for exec in [Execution::RowAtATime, Execution::Vectorized] {
            for &n in &thread_counts() {
                let build = || {
                    Engine::new(db.clone())
                        .strategy(Strategy::Planned)
                        .parallelism(Parallelism::Threads(n))
                        .execution(exec)
                };
                let off = build().query(e.clone()).run().unwrap().relation;
                assert_eq!(off, reference, "{e} {exec} @{n}w: Off ≠ reference");

                let profiled = build()
                    .instrument(Instrument::Profile)
                    .query(e.clone())
                    .run()
                    .unwrap();
                assert_eq!(
                    profiled.relation, reference,
                    "{e} {exec} @{n}w: Profile ≠ reference"
                );
                assert!(
                    profiled.profile().is_some(),
                    "Instrument::Profile yields a profile"
                );

                let ring = Arc::new(RingCollector::new(1 << 14));
                let collected = setjoins::obs::with_collector(ring.clone(), || {
                    build().query(e.clone()).run().unwrap().relation
                });
                assert_eq!(
                    collected, reference,
                    "{e} {exec} @{n}w: collector-on ≠ reference"
                );
                assert!(!ring.log().is_empty(), "collector captured engine spans");
            }
        }
    }
}

/// Satellite golden: every node line of [`PlannedReport::render`]
/// carries the sharing count (`×occ`) and the partition provenance
/// (`[serial]` or `[N partitions]`) — uniformly, profiled or not.
#[test]
fn planned_report_render_marks_every_node() {
    let _guard = lock();
    let db = division_db();
    for &n in &[1usize, 4] {
        let out = Engine::new(db.clone())
            .strategy(Strategy::Planned)
            .instrument(Instrument::Cardinalities)
            .parallelism(Parallelism::Threads(n))
            .query(division::division_double_difference("R", "S"))
            .run()
            .unwrap();
        let Some(Report::Planned(report)) = &out.report else {
            panic!("planned strategy yields a planned report");
        };
        let rendered = report.render();
        let node_lines: Vec<&str> = rendered.lines().skip(1).collect();
        assert!(!node_lines.is_empty(), "report has node lines");
        for line in node_lines {
            assert!(line.contains("  ×"), "sharing count missing: {line:?}");
            assert!(
                line.contains("[serial]") || line.contains(" partitions]"),
                "partition provenance missing: {line:?}"
            );
        }
    }
}

/// [`QueryProfile::render_stable`] is byte-identical across two runs of
/// the same configuration (timings masked), and the timed render
/// carries estimates, q-errors, sharing, partitions, and wall-clock.
#[test]
fn query_profile_render_is_deterministic_and_complete() {
    let _guard = lock();
    let db = division_db();
    let run = || {
        Engine::new(db.clone())
            .strategy(Strategy::Planned)
            .stats(StatsMode::Analyze)
            .instrument(Instrument::Profile)
            .parallelism(Parallelism::Threads(4))
            .query(division::division_double_difference("R", "S"))
            .run()
            .unwrap()
            .profile()
            .expect("Instrument::Profile yields a profile")
    };
    let (a, b) = (run(), run());
    assert_eq!(
        a.render_stable(),
        b.render_stable(),
        "stable render varies between identical runs"
    );
    assert!(a.render_stable().contains("elapsed -"));
    let text = a.render();
    assert!(text.starts_with("profile:"), "header: {text}");
    for needle in ["est≈", "q-error", "  ×", "µs"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    assert!(
        text.contains("[serial]") || text.contains(" partitions]"),
        "partition provenance missing:\n{text}"
    );
}

/// One served query yields one connected trace:
/// `server.dispatch → {storage.snapshot, server.query → plan.node}`,
/// with the exit attributes (tier, output rows) on the query span.
#[test]
fn served_queries_trace_the_full_hierarchy() {
    let _guard = lock();
    let db = division_db();
    let expected = Engine::new(db.clone())
        .query(division::division_double_difference("R", "S"))
        .run()
        .unwrap()
        .relation;
    let server = Server::start(
        db,
        ServerConfig {
            workers: 1,
            cores: 2,
            ..ServerConfig::default()
        },
    );
    let session = server.session();
    let ring = Arc::new(RingCollector::new(1 << 14));
    let rows = setjoins::obs::with_collector(ring.clone(), || {
        let resp = session
            .query(division::division_double_difference("R", "S"))
            .unwrap();
        assert_eq!(*resp.relation, expected);
        resp.relation.len()
    });
    server.shutdown();
    let log = ring.log();
    assert_eq!(log.spans("server.dispatch").count(), 1);
    let queries: Vec<_> = log.spans("server.query").collect();
    assert_eq!(queries.len(), 1);
    assert!(log.has_ancestor(queries[0], "server.dispatch"));
    assert_eq!(
        queries[0].attr("tier").map(ToString::to_string).as_deref(),
        Some("cold")
    );
    assert_eq!(queries[0].attr_u64("out_rows"), Some(rows as u64));
    assert!(
        log.spans("storage.snapshot")
            .any(|s| log.has_ancestor(s, "server.dispatch")),
        "snapshot capture traced under dispatch"
    );
    assert!(log.spans("plan.node").count() > 0, "plan nodes traced");
    assert!(
        log.spans("plan.node")
            .all(|p| log.has_ancestor(p, "server.query")),
        "every plan node hangs off the query span"
    );
}

/// [`Server::metrics_text`] exposes the serving series with correct
/// counts and is byte-stable between scrapes with no traffic in
/// between.
#[test]
fn metrics_text_is_stable_and_complete() {
    let _guard = lock();
    let server = Server::start(
        division_db(),
        ServerConfig {
            workers: 2,
            cores: 2,
            ..ServerConfig::default()
        },
    );
    let session = server.session();
    let e = division::division_double_difference("R", "S");
    session.query(e.clone()).unwrap();
    session.query(e).unwrap(); // second hit answers from the result cache
    let text = server.metrics_text();
    for needle in [
        "sj_server_queries_total 2",
        "sj_server_cache_hits_total{tier=\"result\"} 1",
        "sj_server_queries_by_class_total{class=\"difference\"} 2",
        "sj_server_session_queries_total{session=\"1\"} 2",
        "sj_server_queue_wait_seconds_count 2",
        "sj_server_query_seconds",
        "sj_server_max_q_error",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    assert_eq!(
        text,
        server.metrics_text(),
        "exposition drifts between idle scrapes"
    );
    server.shutdown();
}
