//! E4 — the Lemma 24 pump: building Dn and evaluating the Fig. 4
//! expression on it, across n. Output grows as n² on a linear database.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::Condition;
use sj_core::Pump;
use sj_eval::evaluate;
use sj_storage::tuple;
use sj_workload::figures;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let db = figures::fig4();
    let (e, _, _) = figures::fig4_expression();
    let pump = Pump::new(
        &db,
        &Condition::eq(3, 1),
        &tuple![1, 2, 3],
        &tuple![3, 4, 5],
        &[],
        256,
    )
    .unwrap();
    let mut group = c.benchmark_group("pump_growth");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [16usize, 64, 256] {
        let dn = pump.database(n);
        group.bench_with_input(BenchmarkId::new("build_dn", n), &n, |b, &n| {
            b.iter(|| pump.database(n))
        });
        group.bench_with_input(BenchmarkId::new("evaluate_fig4_expr", n), &dn, |b, dn| {
            b.iter(|| {
                let out = evaluate(&e, dn).unwrap();
                debug_assert!(out.len() >= n * n);
                out
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
