//! Cost of the observability layer on the execution hot path.
//!
//! The point to pin: with no collector installed a `span!` site is one
//! relaxed atomic load — nanoseconds, invisible against any kernel it
//! wraps — and even with a `RingCollector` installed a full planned
//! division query should pay well under the cost of its own hashing.
//!
//! * `null_span_site` — the disabled `span!` + exit-attr sequence every
//!   kernel entry point executes when tracing is off.
//! * `ring_span_site` — the same sequence with a live `RingCollector`
//!   (record allocation + clock reads + ring push).
//! * `query_untraced` / `query_traced` — one planned division query
//!   end to end, without and with a collector installed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_eval::{Engine, Parallelism, StatsMode, Strategy};
use sj_obs::RingCollector;
use sj_workload::DivisionWorkload;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // Per-site cost, disabled path: one relaxed load, attrs never
    // evaluated, exit attr a no-op.
    sj_obs::uninstall();
    group.bench_with_input(BenchmarkId::new("null_span_site", 1), &(), |b, _| {
        b.iter(|| {
            let mut g = sj_obs::span!("kernel.join", left = 1024usize, right = 1024usize);
            g.attr("out_rows", 512usize);
            std::hint::black_box(&g);
        })
    });

    // Per-site cost, live path: record + two clock reads + ring push.
    let ring: Arc<RingCollector> = Arc::new(RingCollector::new(1 << 16));
    group.bench_with_input(BenchmarkId::new("ring_span_site", 1), &(), |b, _| {
        b.iter(|| {
            sj_obs::with_collector(ring.clone(), || {
                let mut g = sj_obs::span!("kernel.join", left = 1024usize, right = 1024usize);
                g.attr("out_rows", 512usize);
                std::hint::black_box(&g);
            })
        })
    });

    // End to end: a planned division query with tracing off vs on.
    for groups in [1024usize, 4096] {
        let w = DivisionWorkload {
            groups,
            divisor_size: (groups as f64).sqrt() as usize,
            containment_fraction: 0.1,
            extra_per_group: 4,
            noise_domain: 4 * groups,
            seed: 0xC057,
        };
        let engine = Engine::new(w.database())
            .strategy(Strategy::Planned)
            .stats(StatsMode::Cached)
            .parallelism(Parallelism::Threads(4));
        let expr = sj_algebra::division::division_double_difference("R", "S");

        sj_obs::uninstall();
        group.bench_with_input(BenchmarkId::new("query_untraced", groups), &(), |b, _| {
            b.iter(|| engine.query(expr.clone()).run().unwrap().relation)
        });

        let ring: Arc<RingCollector> = Arc::new(RingCollector::new(1 << 16));
        group.bench_with_input(BenchmarkId::new("query_traced", groups), &(), |b, _| {
            b.iter(|| {
                sj_obs::with_collector(ring.clone(), || {
                    engine.query(expr.clone()).run().unwrap().relation
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
