//! Minimal, offline, API-compatible stand-in for the `criterion` crate.
//!
//! Supports the surface used by this workspace's benches: `Criterion`,
//! `BenchmarkId`, `Throughput`, `BenchmarkGroup` (with `sample_size`,
//! `warm_up_time`, `measurement_time`, `throughput`, `bench_with_input`,
//! `bench_function`, `finish`), `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Benches really execute and report per-iteration wall-clock means on
//! stdout; there is no statistical analysis, HTML report, or baseline
//! comparison. Sample counts are kept small so `cargo bench` stays fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level driver handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let group = self.benchmark_group(name.clone());
        let mut b = Bencher::new(group.sample_size, group.measurement_time);
        f(&mut b);
        b.report(&name, None);
        group.finish();
        self
    }
}

/// A named benchmark with a displayable parameter.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function_name.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function_name, self.parameter)
        }
    }
}

/// Throughput hint; recorded but only echoed in the report line.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b, input);
        b.report(&self.name, Some(&id));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = BenchmarkId::from_parameter(id);
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        b.report(&self.name, Some(&id));
        self
    }

    pub fn finish(self) {}
}

/// Runs and times the measured closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    mean: Option<Duration>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            measurement_time,
            mean: None,
        }
    }

    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine()); // warm-up
        let budget = self.measurement_time;
        let start = Instant::now();
        let mut iters = 0u32;
        while iters < self.sample_size as u32 {
            black_box(routine());
            iters += 1;
            if start.elapsed() > budget {
                break;
            }
        }
        self.mean = Some(start.elapsed() / iters.max(1));
    }

    fn report(&self, group: &str, id: Option<&BenchmarkId>) {
        let label = match id {
            Some(id) => format!("{group}/{id}"),
            None => group.to_string(),
        };
        match self.mean {
            Some(mean) => println!("{label:<60} {:>12.3?}/iter", mean),
            None => println!("{label:<60} (no measurement)"),
        }
    }
}

/// Defines a function running each listed bench target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main()` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
