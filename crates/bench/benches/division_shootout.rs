//! E10 — Graefe's four division algorithm families head to head
//! (nested-loop vs sort-merge vs hash vs counting), divisor = √groups,
//! 10% containment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sj_setjoin::DivisionSemantics;
use sj_workload::DivisionWorkload;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("division_shootout");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for groups in [256usize, 1024, 4096] {
        let w = DivisionWorkload {
            groups,
            divisor_size: (groups as f64).sqrt() as usize,
            containment_fraction: 0.1,
            extra_per_group: 4,
            noise_domain: 4 * groups,
            seed: 0xD10,
        };
        let (r, s, expected) = w.generate();
        group.throughput(Throughput::Elements(r.len() as u64));
        for (name, alg) in sj_setjoin::division::all_algorithms() {
            if name == "nested-loop" && groups > 1024 {
                continue; // keep total bench time sane
            }
            group.bench_with_input(BenchmarkId::new(name, groups), &(&r, &s), |b, (r, s)| {
                b.iter(|| {
                    let out = alg(r, s, DivisionSemantics::Containment);
                    debug_assert_eq!(out, expected);
                    out
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
