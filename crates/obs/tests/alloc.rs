//! The null tracing path must not allocate: with no collector
//! installed, a `span!` — including one with attribute expressions —
//! is one relaxed atomic load and a no-op guard. This test pins that
//! with a counting global allocator, which is why it lives in its own
//! integration-test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sj_obs::span;

struct Counting;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: Counting = Counting;

#[test]
fn disabled_spans_allocate_nothing() {
    assert!(!sj_obs::enabled(), "no collector installed in this binary");
    // Warm up: let any lazy thread-local or formatting machinery
    // initialize outside the measured window.
    for i in 0..8u64 {
        let mut g = span!("warmup.span", index = i);
        g.attr("rows", i * 2);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 0..100_000u64 {
        let mut g = span!("kernel.join", left = i, right = i * 3, workers = 4usize);
        g.attr("out_rows", i);
        drop(g);
        let _plain = span!("plan.node");
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "null tracing path allocated {} times",
        after - before
    );
}
