//! The statistics catalog: cached `ANALYZE` results over a
//! [`Database`], invalidated copy-on-write.
//!
//! [`Database`] stores relations behind [`Arc`]s and mutates them
//! copy-on-write through `Arc::make_mut`. Each catalog entry keeps a
//! strong handle to the relation it analyzed, which makes the
//! allocation identity an **airtight fingerprint**: while the catalog
//! holds its handle the relation is reader-shared, so *any* later
//! mutation — `Database::set`, `insert`, a write through `get_mut` — replaces or
//! copies the stored `Arc`, and [`StatsCatalog::stats_for`] detects
//! the new allocation with one `Arc::ptr_eq` and re-analyzes. Stale
//! statistics are therefore impossible; the price is that a replaced
//! relation's old allocation lives until its catalog entry is
//! refreshed or [`StatsCatalog::clear`]ed.
//!
//! The catalog itself sits behind a lock and is shared across engine
//! clones via `Arc<StatsCatalog>`; entries are replaced, never mutated,
//! so readers get consistent `Arc<TableStats>` snapshots.

use crate::table::TableStats;
use sj_storage::{Database, FxHashMap, Relation};
use std::sync::{Arc, Mutex};

/// A source of per-relation statistics keyed by relation name — what
/// the cardinality estimator and the planner consume. Implemented by
/// [`StatsCatalog`] (cached) and [`AnalyzeSource`] (always fresh).
pub trait StatsSource {
    /// Statistics for the named relation, or `None` when unknown.
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>>;
}

/// Blanket map source, convenient for tests and one-off estimation.
impl StatsSource for FxHashMap<String, Arc<TableStats>> {
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        self.get(name).cloned()
    }
}

#[derive(Clone)]
struct Entry {
    /// The relation as analyzed. Holding the handle keeps the stored
    /// `Arc` reader-shared, so any mutation copies-on-write to a new
    /// allocation — pointer equality is then a complete freshness
    /// check.
    rel: Arc<Relation>,
    stats: Arc<TableStats>,
}

/// A cache of [`TableStats`] per relation name with copy-on-write
/// invalidation (see the module docs).
#[derive(Default)]
pub struct StatsCatalog {
    entries: Mutex<FxHashMap<String, Entry>>,
}

impl std::fmt::Debug for StatsCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsCatalog")
            .field("entries", &self.len())
            .finish()
    }
}

impl StatsCatalog {
    /// An empty catalog.
    pub fn new() -> StatsCatalog {
        StatsCatalog::default()
    }

    /// Statistics for `db`'s relation `name`, analyzing and caching on
    /// the first request and whenever the stored relation was replaced
    /// since the cached analysis.
    pub fn stats_for(&self, db: &Database, name: &str) -> Option<Arc<TableStats>> {
        let rel = db.get_shared(name)?;
        {
            let entries = self.entries.lock().expect("stats catalog poisoned");
            if let Some(e) = entries.get(name) {
                if Arc::ptr_eq(&e.rel, &rel) {
                    return Some(e.stats.clone());
                }
            }
        }
        // Analyze outside the lock: concurrent misses may race to
        // analyze the same relation, but both compute identical stats
        // and the last write wins — correctness over duplicate work.
        let stats = Arc::new(TableStats::analyze(&rel));
        self.entries.lock().expect("stats catalog poisoned").insert(
            name.to_string(),
            Entry {
                rel,
                stats: stats.clone(),
            },
        );
        Some(stats)
    }

    /// Number of cached entries (test and introspection hook).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("stats catalog poisoned").len()
    }

    /// True iff nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached entry.
    pub fn clear(&self) {
        self.entries.lock().expect("stats catalog poisoned").clear();
    }
}

/// A [`StatsSource`] that re-analyzes on every request — the
/// uncached `StatsMode::Analyze` path.
pub struct AnalyzeSource<'a> {
    db: &'a Database,
}

impl<'a> AnalyzeSource<'a> {
    /// A fresh-analysis source over `db`.
    pub fn new(db: &'a Database) -> AnalyzeSource<'a> {
        AnalyzeSource { db }
    }
}

impl StatsSource for AnalyzeSource<'_> {
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        self.db.get(name).map(|r| Arc::new(TableStats::analyze(r)))
    }
}

/// A [`StatsSource`] view of a catalog bound to a database.
pub struct CatalogSource<'a> {
    catalog: &'a StatsCatalog,
    db: &'a Database,
}

impl<'a> CatalogSource<'a> {
    /// Bind `catalog` to `db` for estimator consumption.
    pub fn new(catalog: &'a StatsCatalog, db: &'a Database) -> CatalogSource<'a> {
        CatalogSource { catalog, db }
    }
}

impl StatsSource for CatalogSource<'_> {
    fn table_stats(&self, name: &str) -> Option<Arc<TableStats>> {
        self.catalog.stats_for(self.db, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::tuple;

    fn db() -> Database {
        let mut d = Database::new();
        d.set("R", Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7]]));
        d.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        d
    }

    #[test]
    fn caches_and_shares_entries() {
        let cat = StatsCatalog::new();
        let d = db();
        assert!(cat.is_empty());
        let a = cat.stats_for(&d, "R").unwrap();
        let b = cat.stats_for(&d, "R").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(cat.len(), 1);
        assert_eq!(a.rows, 3);
        assert!(cat.stats_for(&d, "missing").is_none());
    }

    #[test]
    fn replacement_invalidates() {
        let cat = StatsCatalog::new();
        let mut d = db();
        let before = cat.stats_for(&d, "R").unwrap();
        d.set("R", Relation::from_int_rows(&[&[9, 9]]));
        let after = cat.stats_for(&d, "R").unwrap();
        assert_eq!(before.rows, 3);
        assert_eq!(after.rows, 1, "replaced relation must be re-analyzed");
    }

    #[test]
    fn in_place_mutation_invalidates() {
        let cat = StatsCatalog::new();
        let mut d = db();
        let before = cat.stats_for(&d, "S").unwrap();
        assert_eq!(before.rows, 2);
        // The catalog's entry keeps the Arc reader-shared, so this
        // insert copies-on-write to a fresh allocation — which is
        // exactly what the ptr_eq freshness check detects.
        d.insert("S", tuple![9]).unwrap();
        let after = cat.stats_for(&d, "S").unwrap();
        assert_eq!(after.rows, 3);
    }

    #[test]
    fn clear_empties_the_cache() {
        let cat = StatsCatalog::new();
        let d = db();
        cat.stats_for(&d, "R");
        cat.stats_for(&d, "S");
        assert_eq!(cat.len(), 2);
        cat.clear();
        assert!(cat.is_empty());
    }

    #[test]
    fn analyze_source_is_always_fresh() {
        let d = db();
        let src = AnalyzeSource::new(&d);
        let a = src.table_stats("R").unwrap();
        let b = src.table_stats("R").unwrap();
        assert_eq!(a, b);
        assert!(!Arc::ptr_eq(&a, &b), "fresh analysis per request");
        assert!(src.table_stats("missing").is_none());
    }

    #[test]
    fn catalog_source_delegates() {
        let cat = StatsCatalog::new();
        let d = db();
        let src = CatalogSource::new(&cat, &d);
        let a = src.table_stats("R").unwrap();
        let b = src.table_stats("R").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
