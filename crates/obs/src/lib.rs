//! # sj-obs — observability primitives for the serving stack
//!
//! Two independent halves, both dependency-free and usable from the very
//! bottom of the workspace (`sj-storage` upward):
//!
//! * [`trace`] — a **zero-cost-when-off** structured tracing layer. Code
//!   marks regions with [`span!`]; a process-global pluggable
//!   [`Collector`] receives enter/exit events with key/value attributes.
//!   With no collector installed (the *null* configuration, the
//!   default), a span is one relaxed atomic load — no allocation, no
//!   lock, and the attribute expressions are never evaluated. The
//!   bundled [`RingCollector`] records spans into a fixed-capacity ring
//!   buffer whose snapshot, a [`TraceLog`], renders as a hierarchical
//!   trace and feeds the cost-model calibrator in `sj-stats`.
//!
//! * [`metrics`] — a named-series [`Metrics`] registry: monotonic
//!   [`Counter`]s, [`Gauge`]s, NaN-proof running maxima ([`MaxGauge`]),
//!   and fixed-bucket latency [`Histogram`]s (p50/p95/p99 derivable),
//!   with deterministic Prometheus-style text exposition
//!   ([`Metrics::expose`]). `sj-server` keeps its `ServerStats` API as a
//!   thin facade over one of these registries.
//!
//! The span taxonomy used across the workspace (see the README's
//! "Observability" section): `server.dispatch` → `server.query` →
//! `storage.snapshot` / `plan.node` → `kernel.*` → `kernel.partition`.

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MaxGauge, Metrics};
pub use trace::{
    current_span, enabled, install, uninstall, with_collector, with_parent, AttrValue, Collector,
    RingCollector, SpanGuard, SpanId, SpanRecord, TraceLog,
};
