//! The set-join / division **algorithm registry**: every algorithm of this
//! crate behind one trait object, with a deterministic `auto` selector.
//!
//! The paper's dichotomy is ultimately a statement about *which algorithm a
//! query processor is allowed to pick*: inside plain RA every division plan
//! is quadratic (Proposition 26), while the direct operators of this crate
//! are linear or quasilinear. The registry makes that choice a first-class,
//! inspectable object instead of a hard-wired function call:
//!
//! * [`SetJoinAlgorithm`] / [`DivisionAlgorithm`] — name, supported
//!   predicates, complexity class per Definition 16, and `run`.
//! * [`Registry`] — a named collection of algorithms;
//!   [`Registry::standard`] holds every algorithm this crate implements.
//! * [`Registry::auto_set_join`] / [`Registry::auto_division`] — pick an
//!   algorithm from the predicate and input statistics ([`Relation::len`];
//!   canonical storage order means both operands are always sorted, so the
//!   merge-based algorithms never need a sort pass).
//!
//! The free functions of [`crate::division`] and [`crate::setjoin`] remain
//! available as thin wrappers; `sj-eval`'s `Engine` routes its division and
//! set-join entry points through this registry, so swapping algorithms in
//! an experiment is a one-line configuration change.

use crate::division::{
    counting_division, hash_division, nested_loop_division, sort_merge_division, DivisionSemantics,
};
use crate::inverted::inverted_index_set_join;
use crate::parallel::{parallel_hash_division, parallel_signature_set_join};
use crate::setjoin::{
    hash_set_equality_join, intersect_join_via_equijoin, nested_loop_set_join, signature_set_join,
    SetPredicate,
};
use crate::wide_signature::wide_signature_set_join;
use sj_stats::{containment_selectivity, CostModel, TableStats};
use sj_storage::Relation;
use std::fmt;
use std::sync::{Arc, OnceLock};

// `ComplexityClass` (Definition 16's running-time classes) lives in
// `sj-stats` — the bottom of the crate graph — so the cost model can
// price it without a dependency cycle; this re-export keeps the
// historical `sj_setjoin::registry::ComplexityClass` path working.
pub use sj_stats::ComplexityClass;

/// A named set-join algorithm `R(A,B) ⋈_{B θ D} S(C,D)`.
///
/// Implementations must agree with [`nested_loop_set_join`] on every
/// supported predicate (cross-validated by property tests).
pub trait SetJoinAlgorithm: Send + Sync {
    /// Stable name used for registry lookup and reports.
    fn name(&self) -> &'static str;
    /// Does the algorithm implement this predicate?
    fn supports(&self, pred: SetPredicate) -> bool;
    /// Complexity class when run on `pred` (worst case over inputs).
    fn complexity(&self, pred: SetPredicate) -> ComplexityClass;
    /// Execute the set join. Callers must check [`Self::supports`] first;
    /// implementations may panic on unsupported predicates.
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation;
    /// Execute with a caller-supplied worker-count hint. Serial
    /// algorithms ignore the hint (the default); partition-parallel
    /// algorithms fan out over `workers` threads (`0` = one per CPU).
    /// Results are byte-identical for every worker count.
    fn run_with_workers(
        &self,
        r: &Relation,
        s: &Relation,
        pred: SetPredicate,
        workers: usize,
    ) -> Relation {
        let _ = workers;
        self.run(r, s, pred)
    }
}

/// A named division algorithm `R(A,B) ÷ S(B)` (both semantics).
///
/// Implementations must agree with the brute-force oracle on both
/// [`DivisionSemantics`] variants (cross-validated by property tests).
pub trait DivisionAlgorithm: Send + Sync {
    /// Stable name used for registry lookup and reports.
    fn name(&self) -> &'static str;
    /// Complexity class under `sem` (worst case over inputs).
    fn complexity(&self, sem: DivisionSemantics) -> ComplexityClass;
    /// Execute the division.
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation;
    /// Execute with a caller-supplied worker-count hint (see
    /// [`SetJoinAlgorithm::run_with_workers`]; serial algorithms ignore
    /// it).
    fn run_with_workers(
        &self,
        r: &Relation,
        s: &Relation,
        sem: DivisionSemantics,
        workers: usize,
    ) -> Relation {
        let _ = workers;
        self.run(r, s, sem)
    }
}

/// Run a division algorithm under a `setjoin.division` tracing span
/// carrying the algorithm name, operand sizes, worker hint, and output
/// cardinality — the single traced choke point for registry-routed
/// divisions (the engine's `divide` goes through here).
pub fn run_division_traced(
    alg: &dyn DivisionAlgorithm,
    r: &Relation,
    s: &Relation,
    sem: DivisionSemantics,
    workers: usize,
) -> Relation {
    let mut span = sj_obs::span!(
        "setjoin.division",
        algorithm = alg.name(),
        left = r.len(),
        right = s.len(),
        workers = workers.max(1)
    );
    let out = alg.run_with_workers(r, s, sem, workers);
    span.attr("out_rows", out.len());
    out
}

/// Run a set-join algorithm under a `setjoin.setjoin` tracing span (see
/// [`run_division_traced`]).
pub fn run_set_join_traced(
    alg: &dyn SetJoinAlgorithm,
    r: &Relation,
    s: &Relation,
    pred: SetPredicate,
    workers: usize,
) -> Relation {
    let mut span = sj_obs::span!(
        "setjoin.setjoin",
        algorithm = alg.name(),
        left = r.len(),
        right = s.len(),
        workers = workers.max(1)
    );
    let out = alg.run_with_workers(r, s, pred, workers);
    span.attr("out_rows", out.len());
    out
}

// ---------------------------------------------------------------------------
// Set-join algorithm implementations (wrapping the crate's free functions)
// ---------------------------------------------------------------------------

/// [`nested_loop_set_join`]: every group pair verified exactly.
pub struct NestedLoopSetJoin;

impl SetJoinAlgorithm for NestedLoopSetJoin {
    fn name(&self) -> &'static str {
        "nested-loop"
    }
    fn supports(&self, _pred: SetPredicate) -> bool {
        true
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        nested_loop_set_join(r, s, pred)
    }
}

/// [`signature_set_join`]: 64-bit Bloom signatures prune pairs before the
/// exact merge verification.
pub struct SignatureSetJoin;

impl SetJoinAlgorithm for SignatureSetJoin {
    fn name(&self) -> &'static str {
        "signature64"
    }
    fn supports(&self, _pred: SetPredicate) -> bool {
        true
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        // Same worst case as nested loops; the filter is a constant factor.
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        signature_set_join(r, s, pred)
    }
}

/// [`wide_signature_set_join`] with a configurable signature width. The
/// reported name tracks the width (`signature128`, `signature256`, …), so
/// a re-registered variant never masquerades as the standard entry.
pub struct WideSignatureSetJoin {
    /// Signature width in 64-bit words.
    pub words: usize,
}

impl SetJoinAlgorithm for WideSignatureSetJoin {
    fn name(&self) -> &'static str {
        // `words == 1` deliberately does NOT reuse "signature64": that
        // name belongs to [`SignatureSetJoin`], and the wide variant must
        // never shadow it.
        match self.words {
            2 => "signature128",
            4 => "signature256",
            8 => "signature512",
            _ => "signature-wide",
        }
    }
    fn supports(&self, pred: SetPredicate) -> bool {
        matches!(
            pred,
            SetPredicate::Contains | SetPredicate::ContainedIn | SetPredicate::Equals
        )
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        wide_signature_set_join(r, s, pred, self.words)
    }
}

/// [`inverted_index_set_join`]: per-element postings intersection; only the
/// set-containment direction `B ⊇ D`.
pub struct InvertedIndexSetJoin;

impl SetJoinAlgorithm for InvertedIndexSetJoin {
    fn name(&self) -> &'static str {
        "inverted-index"
    }
    fn supports(&self, pred: SetPredicate) -> bool {
        pred == SetPredicate::Contains
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        assert_eq!(pred, SetPredicate::Contains, "inverted-index: ⊇ only");
        inverted_index_set_join(r, s)
    }
}

/// [`hash_set_equality_join`]: hash each group's canonical value list;
/// set-equality only.
pub struct HashSetEqualityJoin;

impl SetJoinAlgorithm for HashSetEqualityJoin {
    fn name(&self) -> &'static str {
        "hash-set-equality"
    }
    fn supports(&self, pred: SetPredicate) -> bool {
        pred == SetPredicate::Equals
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        ComplexityClass::Quasilinear
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        assert_eq!(pred, SetPredicate::Equals, "hash-set-equality: = only");
        hash_set_equality_join(r, s)
    }
}

/// [`intersect_join_via_equijoin`]: the `∩ ≠ ∅` predicate as an ordinary
/// equijoin — the paper's remark made executable.
pub struct EquijoinIntersect;

impl SetJoinAlgorithm for EquijoinIntersect {
    fn name(&self) -> &'static str {
        "equijoin-intersect"
    }
    fn supports(&self, pred: SetPredicate) -> bool {
        pred == SetPredicate::IntersectsNonempty
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        ComplexityClass::Linear
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        assert_eq!(
            pred,
            SetPredicate::IntersectsNonempty,
            "equijoin-intersect: ∩≠∅ only"
        );
        intersect_join_via_equijoin(r, s)
    }
}

/// [`parallel_signature_set_join`]: the partition-based set join —
/// groups partitioned by anchor element, signature-filtered exact tests
/// per partition, fanned out over scoped worker threads. Same worst case
/// as the monolithic signature join, but the partitioning prunes the
/// candidate pair space even at one worker.
pub struct ParallelSignatureSetJoin {
    /// Worker threads; `0` = one per available CPU (capped at 8).
    pub threads: usize,
}

impl SetJoinAlgorithm for ParallelSignatureSetJoin {
    fn name(&self) -> &'static str {
        "parallel-signature"
    }
    fn supports(&self, pred: SetPredicate) -> bool {
        // ∩ ≠ ∅ has no anchor element; it is an equijoin anyway.
        matches!(
            pred,
            SetPredicate::Contains | SetPredicate::ContainedIn | SetPredicate::Equals
        )
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        // All groups can share one anchor partition in the worst case.
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        parallel_signature_set_join(r, s, pred, self.threads)
    }
    fn run_with_workers(
        &self,
        r: &Relation,
        s: &Relation,
        pred: SetPredicate,
        workers: usize,
    ) -> Relation {
        parallel_signature_set_join(r, s, pred, workers)
    }
}

// ---------------------------------------------------------------------------
// Division algorithm implementations
// ---------------------------------------------------------------------------

/// [`nested_loop_division`]: the deliberate quadratic baseline.
pub struct NestedLoopDivision;

impl DivisionAlgorithm for NestedLoopDivision {
    fn name(&self) -> &'static str {
        "nested-loop"
    }
    fn complexity(&self, _sem: DivisionSemantics) -> ComplexityClass {
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        nested_loop_division(r, s, sem)
    }
}

/// [`sort_merge_division`]: one merge pass per A-group; sort-free because
/// relations are stored in canonical order.
pub struct SortMergeDivision;

impl DivisionAlgorithm for SortMergeDivision {
    fn name(&self) -> &'static str {
        "sort-merge"
    }
    fn complexity(&self, _sem: DivisionSemantics) -> ComplexityClass {
        // Canonical storage order has already paid the sort.
        ComplexityClass::Linear
    }
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        sort_merge_division(r, s, sem)
    }
}

/// [`hash_division`]: Graefe's bitmap hash-division.
pub struct HashDivision;

impl DivisionAlgorithm for HashDivision {
    fn name(&self) -> &'static str {
        "hash"
    }
    fn complexity(&self, _sem: DivisionSemantics) -> ComplexityClass {
        ComplexityClass::Linear
    }
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        hash_division(r, s, sem)
    }
}

/// [`counting_division`]: the Section 5 grouping/counting strategy.
pub struct CountingDivision;

impl DivisionAlgorithm for CountingDivision {
    fn name(&self) -> &'static str {
        "counting"
    }
    fn complexity(&self, _sem: DivisionSemantics) -> ComplexityClass {
        ComplexityClass::Linear
    }
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        counting_division(r, s, sem)
    }
}

/// [`parallel_hash_division`]: Graefe's hash-division with the dividend
/// hash-partitioned on A across scoped worker threads.
pub struct ParallelHashDivision {
    /// Worker threads; `0` = one per available CPU (capped at 8).
    pub threads: usize,
}

impl DivisionAlgorithm for ParallelHashDivision {
    fn name(&self) -> &'static str {
        "parallel-hash"
    }
    fn complexity(&self, _sem: DivisionSemantics) -> ComplexityClass {
        ComplexityClass::Linear
    }
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        parallel_hash_division(r, s, sem, self.threads)
    }
    fn run_with_workers(
        &self,
        r: &Relation,
        s: &Relation,
        sem: DivisionSemantics,
        workers: usize,
    ) -> Relation {
        parallel_hash_division(r, s, sem, workers)
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// A collection of set-join and division algorithms, addressable by name,
/// with a deterministic `auto` selector.
#[derive(Clone, Default)]
pub struct Registry {
    set_joins: Vec<Arc<dyn SetJoinAlgorithm>>,
    divisions: Vec<Arc<dyn DivisionAlgorithm>>,
}

/// The selection thresholds of the stats-free `auto` selectors
/// ([`Registry::auto_set_join_with`] / [`Registry::auto_division_with`]),
/// named and documented in one place and public so tests and experiments
/// can construct inputs exactly on either side of each boundary. The
/// cost-based selectors ([`Registry::auto_set_join_costed`] /
/// [`Registry::auto_division_costed`]) replace these fixed cutoffs with
/// [`CostModel`] estimates when statistics are available.
pub mod thresholds {
    /// Inputs at or below this many tuples (both operands together) skip
    /// signature/hash machinery: the setup cost dominates at toy sizes.
    pub const SMALL_INPUT: usize = 64;

    /// Average group size at which the `auto` selector widens signatures
    /// from one to four words (large sets saturate 64-bit signatures).
    pub const WIDE_SET_THRESHOLD: usize = 16;

    /// Combined input size (tuples, both operands) above which the `auto`
    /// selectors prefer the partition-parallel set-join variant when the
    /// caller signals a parallel execution context (`workers > 1`). Below
    /// it, partition bookkeeping outweighs the pruning.
    pub const PARALLEL_SETJOIN_INPUT: usize = 4096;

    /// Combined input size above which the `auto` selectors prefer the
    /// partition-parallel division when `workers > 1`.
    pub const PARALLEL_DIVISION_INPUT: usize = 8192;
}

use thresholds::{
    PARALLEL_DIVISION_INPUT, PARALLEL_SETJOIN_INPUT, SMALL_INPUT, WIDE_SET_THRESHOLD,
};

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The standard registry: every algorithm this crate implements.
    ///
    /// Set joins: `nested-loop`, `signature64`, `signature256`,
    /// `inverted-index`, `hash-set-equality`, `equijoin-intersect`,
    /// `parallel-signature`.
    /// Divisions: `nested-loop`, `sort-merge`, `hash`, `counting`,
    /// `parallel-hash`.
    pub fn standard() -> &'static Registry {
        Self::standard_cell()
    }

    /// The standard registry as a shared handle — the same process-wide
    /// instance [`Registry::standard`] borrows, never a copy. This is
    /// what `sj-eval`'s `Engine` holds by default.
    pub fn standard_shared() -> Arc<Registry> {
        Self::standard_cell().clone()
    }

    fn standard_cell() -> &'static Arc<Registry> {
        static STANDARD: OnceLock<Arc<Registry>> = OnceLock::new();
        STANDARD.get_or_init(|| {
            let mut reg = Registry::new();
            reg.register_set_join(Arc::new(NestedLoopSetJoin));
            reg.register_set_join(Arc::new(SignatureSetJoin));
            reg.register_set_join(Arc::new(WideSignatureSetJoin { words: 4 }));
            reg.register_set_join(Arc::new(InvertedIndexSetJoin));
            reg.register_set_join(Arc::new(HashSetEqualityJoin));
            reg.register_set_join(Arc::new(EquijoinIntersect));
            reg.register_set_join(Arc::new(ParallelSignatureSetJoin { threads: 0 }));
            reg.register_division(Arc::new(NestedLoopDivision));
            reg.register_division(Arc::new(SortMergeDivision));
            reg.register_division(Arc::new(HashDivision));
            reg.register_division(Arc::new(CountingDivision));
            reg.register_division(Arc::new(ParallelHashDivision { threads: 0 }));
            Arc::new(reg)
        })
    }

    /// Add a set-join algorithm. Last registration wins on name clashes
    /// (lookup scans from the back), so callers can shadow a standard
    /// algorithm with a tuned variant.
    pub fn register_set_join(&mut self, alg: Arc<dyn SetJoinAlgorithm>) {
        self.set_joins.push(alg);
    }

    /// Add a division algorithm (same shadowing rule).
    pub fn register_division(&mut self, alg: Arc<dyn DivisionAlgorithm>) {
        self.divisions.push(alg);
    }

    /// All registered set-join algorithms, in registration order.
    pub fn set_join_algorithms(&self) -> &[Arc<dyn SetJoinAlgorithm>] {
        &self.set_joins
    }

    /// All registered division algorithms, in registration order.
    pub fn division_algorithms(&self) -> &[Arc<dyn DivisionAlgorithm>] {
        &self.divisions
    }

    /// Look up a set-join algorithm by name.
    pub fn find_set_join(&self, name: &str) -> Option<Arc<dyn SetJoinAlgorithm>> {
        self.set_joins
            .iter()
            .rev()
            .find(|a| a.name() == name)
            .cloned()
    }

    /// Look up a division algorithm by name.
    pub fn find_division(&self, name: &str) -> Option<Arc<dyn DivisionAlgorithm>> {
        self.divisions
            .iter()
            .rev()
            .find(|a| a.name() == name)
            .cloned()
    }

    /// Pick a set-join algorithm from the predicate and input statistics.
    ///
    /// Deterministic rules, in order:
    ///
    /// 1. `=` → `hash-set-equality` (quasilinear beats any pair scan).
    /// 2. `∩ ≠ ∅` → `equijoin-intersect` (the paper's equijoin remark).
    /// 3. Tiny inputs (≤ 64 tuples total) → `nested-loop`: signature
    ///    setup costs more than it saves.
    /// 4. Large average group size (≥ 16 values) → `signature256`:
    ///    64-bit signatures saturate and stop filtering.
    /// 5. Otherwise → `signature64`.
    ///
    /// Returns `None` only when the registry lacks an algorithm for the
    /// predicate (never for [`Registry::standard`]).
    pub fn auto_set_join(
        &self,
        r: &Relation,
        s: &Relation,
        pred: SetPredicate,
    ) -> Option<Arc<dyn SetJoinAlgorithm>> {
        self.auto_set_join_with(r, s, pred, 1)
    }

    /// [`Registry::auto_set_join`] with a parallel-context hint: when the
    /// caller will execute with `workers > 1` threads (the `Engine`
    /// passes its parallelism degree) and the containment input is large
    /// (≥ 4096 tuples combined), the partition-parallel
    /// `parallel-signature` variant is preferred — the anchor-element
    /// partitioning both prunes candidate pairs and gives the workers
    /// independent shards. `workers ≤ 1` reproduces the serial choice
    /// exactly; `=` and `∩ ≠ ∅` keep their dedicated (quasi)linear
    /// algorithms at every worker count.
    pub fn auto_set_join_with(
        &self,
        r: &Relation,
        s: &Relation,
        pred: SetPredicate,
        workers: usize,
    ) -> Option<Arc<dyn SetJoinAlgorithm>> {
        let pick = |name: &str| self.find_set_join(name).filter(|a| a.supports(pred));
        let fallback = || {
            self.set_joins
                .iter()
                .rev()
                .find(|a| a.supports(pred))
                .cloned()
        };
        let n = r.len() + s.len();
        let preferred = match pred {
            SetPredicate::Equals => pick("hash-set-equality"),
            SetPredicate::IntersectsNonempty => pick("equijoin-intersect"),
            SetPredicate::Contains | SetPredicate::ContainedIn => {
                if workers > 1 && n >= PARALLEL_SETJOIN_INPUT {
                    pick("parallel-signature")
                } else if n <= SMALL_INPUT {
                    pick("nested-loop")
                } else if avg_group_size(r).max(avg_group_size(s)) >= WIDE_SET_THRESHOLD {
                    pick("signature256")
                } else {
                    pick("signature64")
                }
            }
        };
        preferred.or_else(fallback)
    }

    /// Pick a division algorithm from the semantics and input statistics.
    ///
    /// Deterministic rules, in order:
    ///
    /// 1. Tiny inputs (≤ 64 tuples total) → `sort-merge`: canonical
    ///    storage order makes it sort-free, and it allocates nothing.
    /// 2. Equality semantics → `counting` (group sizes fall out of the
    ///    single counting pass).
    /// 3. Otherwise → `hash` (Graefe's bitmap division).
    ///
    /// Returns `None` only for an empty registry.
    pub fn auto_division(
        &self,
        r: &Relation,
        s: &Relation,
        sem: DivisionSemantics,
    ) -> Option<Arc<dyn DivisionAlgorithm>> {
        self.auto_division_with(r, s, sem, 1)
    }

    /// [`Registry::auto_division`] with a parallel-context hint: with
    /// `workers > 1` and a large dividend (≥ 8192 tuples combined) the
    /// hash-partitioned `parallel-hash` variant is preferred so the
    /// build/probe pass shards across the worker threads. `workers ≤ 1`
    /// reproduces the serial choice exactly.
    pub fn auto_division_with(
        &self,
        r: &Relation,
        s: &Relation,
        sem: DivisionSemantics,
        workers: usize,
    ) -> Option<Arc<dyn DivisionAlgorithm>> {
        let pick = |name: &str| self.find_division(name);
        let preferred = if workers > 1 && r.len() + s.len() >= PARALLEL_DIVISION_INPUT {
            pick("parallel-hash")
        } else if r.len() + s.len() <= SMALL_INPUT {
            pick("sort-merge")
        } else if sem == DivisionSemantics::Equality {
            pick("counting")
        } else {
            pick("hash")
        };
        preferred.or_else(|| self.divisions.last().cloned())
    }

    /// **Cost-based** division selection: with statistics, every
    /// registered algorithm is priced by [`division_cost`] and the
    /// cheapest wins; without statistics this is exactly
    /// [`Registry::auto_division_with`] (the threshold rules), so
    /// engines with statistics disabled behave identically to engines
    /// predating the cost model.
    ///
    /// Deterministic: identical statistics produce identical picks; on
    /// exact cost ties the latest registration of a name wins (matching
    /// the [`Registry::find_division`] shadowing rule).
    pub fn auto_division_costed(
        &self,
        r: &Relation,
        s: &Relation,
        sem: DivisionSemantics,
        workers: usize,
        stats: Option<(&TableStats, &TableStats)>,
        model: &CostModel,
    ) -> Option<Arc<dyn DivisionAlgorithm>> {
        let Some((rs, ss)) = stats else {
            return self.auto_division_with(r, s, sem, workers);
        };
        let mut best: Option<(f64, Arc<dyn DivisionAlgorithm>)> = None;
        let mut seen: Vec<&str> = Vec::new();
        for alg in self.divisions.iter().rev() {
            if seen.contains(&alg.name()) {
                continue; // shadowed by a later registration
            }
            seen.push(alg.name());
            let cost = division_cost(model, alg.as_ref(), rs, ss, sem, workers);
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, alg.clone()));
            }
        }
        best.map(|(_, a)| a)
    }

    /// **Cost-based** set-join selection over the algorithms supporting
    /// `pred` (see [`Registry::auto_division_costed`]; prices come from
    /// [`set_join_cost`]). Falls back to the threshold rules of
    /// [`Registry::auto_set_join_with`] when `stats` is `None`.
    pub fn auto_set_join_costed(
        &self,
        r: &Relation,
        s: &Relation,
        pred: SetPredicate,
        workers: usize,
        stats: Option<(&TableStats, &TableStats)>,
        model: &CostModel,
    ) -> Option<Arc<dyn SetJoinAlgorithm>> {
        let Some((rs, ss)) = stats else {
            return self.auto_set_join_with(r, s, pred, workers);
        };
        let mut best: Option<(f64, Arc<dyn SetJoinAlgorithm>)> = None;
        let mut seen: Vec<&str> = Vec::new();
        for alg in self.set_joins.iter().rev() {
            if seen.contains(&alg.name()) {
                continue;
            }
            seen.push(alg.name());
            if !alg.supports(pred) {
                continue;
            }
            let cost = set_join_cost(model, alg.as_ref(), rs, ss, pred, workers);
            if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                best = Some((cost, alg.clone()));
            }
        }
        best.map(|(_, a)| a)
    }
}

// ---------------------------------------------------------------------------
// The cost formulas
// ---------------------------------------------------------------------------

/// Verification work per nested-loop candidate pair, in
/// [`CostModel::verify`] units — calibrated against the measured
/// `results/setjoin_shootout.csv` medians (the exact merge test bails
/// out early on most non-matching pairs, so the effective per-pair cost
/// is a small constant rather than the full set size).
const NL_PAIR: f64 = 2.4;

/// Per-candidate scan factor of the inverted-index join's postings
/// intersection (calibrated like [`NL_PAIR`]).
const INV_SCAN: f64 = 0.55;

/// Per-probe-group bookkeeping of the inverted-index join (it
/// allocates a candidate-count map per contained group) — dominant at
/// small group counts, where the measured medians sit well above the
/// pure postings-scan cost.
const INV_GROUP: f64 = 100.0;

/// Per-candidate anchor-postings probe cost of the partition-based set
/// join, on top of the signature test.
const PSJ_PROBE: f64 = 0.2;

/// Estimated cost, in [`CostModel`] units, of running a division
/// algorithm on inputs with the given statistics.
///
/// The standard algorithm names get refined formulas (constants
/// calibrated against `results/division_shootout.csv`); anything else
/// is priced by the generic [`CostModel::class_cost`] of its declared
/// [`ComplexityClass`] — so user-registered algorithms participate in
/// cost-based selection from their class alone.
pub fn division_cost(
    model: &CostModel,
    alg: &dyn DivisionAlgorithm,
    r: &TableStats,
    s: &TableStats,
    sem: DivisionSemantics,
    workers: usize,
) -> f64 {
    let w = workers.max(1) as f64;
    let (n_r, n_s) = (r.rows as f64, s.rows as f64);
    let g = r.groups() as f64;
    let mean = r.mean_set();
    match alg.name() {
        // Each (group, divisor value) probe scans half the group.
        "nested-loop" => model.tuple_pass * g * n_s * (1.0 + mean / 2.0),
        // One allocation-free merge per group: the whole divisor is
        // re-walked per group, the dividend once in total.
        "sort-merge" => 0.7 * model.tuple_pass * (n_r + g * n_s),
        // Graefe's bitmap division: build the divisor table, one hash
        // probe per dividend tuple.
        "hash" => model.setup + model.tuple_pass * n_s + model.hash_op * n_r,
        // The counting pass touches the same tuples with a slightly
        // leaner per-tuple operation (counter bump vs bitmap index).
        "counting" => model.setup + model.tuple_pass * n_s + 0.95 * model.hash_op * n_r,
        // Shared divisor index + group-aligned zero-copy dividend
        // slices: the probe pass shards across workers, everything
        // else (spawn, partition bookkeeping, merge) is overhead.
        "parallel-hash" => {
            model.setup
                + model.partition_setup
                + model.spawn * w
                + model.tuple_pass * (n_s + g)
                + 0.95 * model.hash_op * n_r / w
        }
        _ => model.setup + model.class_cost(alg.complexity(sem), n_r + n_s),
    }
}

/// Estimated cost, in [`CostModel`] units, of running a set-join
/// algorithm on inputs with the given statistics (see
/// [`division_cost`]; constants calibrated against
/// `results/setjoin_shootout.csv`).
///
/// The quadratic algorithms are priced on the **group-pair space**
/// `G_R · G_S` with the expected exact-verification work derived from
/// [`containment_selectivity`] and the signature false-positive rate
/// from the sets' signature-bit saturation; the partition-based join
/// additionally gets the anchor-element pruning factor
/// `mean-set / distinct-elements` — the same quantity that makes it
/// win even single-threaded on selective workloads.
pub fn set_join_cost(
    model: &CostModel,
    alg: &dyn SetJoinAlgorithm,
    r: &TableStats,
    s: &TableStats,
    pred: SetPredicate,
    workers: usize,
) -> f64 {
    let w = workers.max(1) as f64;
    let (n_r, n_s) = (r.rows as f64, s.rows as f64);
    let n = n_r + n_s;
    let (g_r, g_s) = (r.groups() as f64, s.groups() as f64);
    let pairs = g_r * g_s;
    // The side whose sets must cover the other's.
    let (containing, contained) = match pred {
        SetPredicate::ContainedIn => (s, r),
        _ => (r, s),
    };
    let mean_b = containing.mean_set();
    let mean_d = contained.mean_set();
    let d_elems = containing.distinct(1).max(1) as f64;
    // Probability a candidate pair passes the exact test; drives the
    // verification work that survives a signature filter.
    let sel = match pred {
        SetPredicate::Contains | SetPredicate::ContainedIn => {
            containment_selectivity(containing, contained)
        }
        // Equality is containment with a size match on top.
        SetPredicate::Equals => 0.5 * containment_selectivity(containing, contained),
        // Any shared element qualifies — selective only on tiny sets.
        SetPredicate::IntersectsNonempty => 0.5,
    };
    // Exact verification merges both sorted sets.
    let verify_pair = model.verify * (mean_b + mean_d) / 2.0;
    // Signature false-positive rate at a given width: the probability
    // that all of the contained set's signature bits land inside the
    // containing set's occupied bits.
    let fp = |bits: f64| {
        let occ = 1.0 - (-mean_b / bits).exp();
        occ.powf(mean_d.clamp(1.0, bits))
    };
    match alg.name() {
        "nested-loop" => model.tuple_pass * n + NL_PAIR * model.verify * pairs,
        "signature64" => {
            model.setup
                + model.tuple_pass * n
                + pairs * (model.sig_test + (sel + fp(64.0)) * verify_pair)
        }
        "signature128" | "signature256" | "signature512" | "signature-wide" => {
            model.setup
                + 4.0 * model.tuple_pass * n
                + pairs * (2.2 * model.sig_test + (sel + fp(256.0)) * verify_pair)
        }
        // Postings over the containing side; every element of every
        // contained set scans its postings list (average length
        // `rows / distinct-elements`), with a per-group candidate map
        // on top.
        "inverted-index" => {
            model.setup
                + 1.5 * model.tuple_pass * containing.rows as f64
                + INV_GROUP * contained.groups() as f64
                + INV_SCAN * contained.rows as f64 * (containing.rows as f64 / d_elems)
        }
        "hash-set-equality" => model.setup + model.hash_op * n + model.tuple_pass * (g_r + g_s),
        "equijoin-intersect" => model.setup + model.hash_op * n,
        "parallel-signature" => {
            let base = model.partition_setup + 2.0 * model.tuple_pass * n + model.spawn * w;
            match pred {
                // Set-hash partitioning: candidate pairs collapse to
                // the per-partition collisions, dominated by the group
                // hashing itself.
                SetPredicate::Equals => base + model.hash_op * (g_r + g_s) / w,
                _ => {
                    // Anchor pruning: a contained group is only tested
                    // against groups holding its anchor element.
                    let pruned = pairs * (mean_b / d_elems).min(1.0);
                    base + (pruned * (model.sig_test + PSJ_PROBE) + pairs * sel * verify_pair) / w
                }
            }
        }
        _ => model.setup + model.class_cost(alg.complexity(pred), n),
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field(
                "set_joins",
                &self.set_joins.iter().map(|a| a.name()).collect::<Vec<_>>(),
            )
            .field(
                "divisions",
                &self.divisions.iter().map(|a| a.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Average number of values per group of a binary relation (0 when empty).
fn avg_group_size(r: &Relation) -> usize {
    // Canonical storage order keeps equal keys adjacent: counting group
    // boundaries is one allocation-free scan (materializing `group_sets`
    // here would clone every value just to take a length).
    let mut groups = 0usize;
    let mut prev = None;
    for t in r {
        if prev != Some(&t[0]) {
            groups += 1;
            prev = Some(&t[0]);
        }
    }
    r.len().checked_div(groups).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::{Relation, Tuple};

    fn pairs(rows: &[[i64; 2]]) -> Relation {
        Relation::from_tuples(2, rows.iter().map(|r| Tuple::from_ints(r))).unwrap()
    }

    #[test]
    fn standard_registry_has_all_algorithms() {
        let reg = Registry::standard();
        assert_eq!(reg.set_join_algorithms().len(), 7);
        assert_eq!(reg.division_algorithms().len(), 5);
        for name in [
            "nested-loop",
            "signature64",
            "signature256",
            "inverted-index",
            "hash-set-equality",
            "equijoin-intersect",
            "parallel-signature",
        ] {
            assert!(reg.find_set_join(name).is_some(), "{name}");
        }
        for name in [
            "nested-loop",
            "sort-merge",
            "hash",
            "counting",
            "parallel-hash",
        ] {
            assert!(reg.find_division(name).is_some(), "{name}");
        }
        assert!(reg.find_set_join("no-such").is_none());
        assert!(reg.find_division("no-such").is_none());
    }

    #[test]
    fn every_registered_algorithm_matches_the_baseline() {
        let r = pairs(&[[1, 10], [1, 11], [2, 10], [3, 12], [3, 13]]);
        let s = pairs(&[[5, 10], [5, 11], [6, 10], [7, 13]]);
        let reg = Registry::standard();
        for pred in [
            SetPredicate::Contains,
            SetPredicate::ContainedIn,
            SetPredicate::Equals,
            SetPredicate::IntersectsNonempty,
        ] {
            let want = nested_loop_set_join(&r, &s, pred);
            for alg in reg.set_join_algorithms() {
                if alg.supports(pred) {
                    assert_eq!(alg.run(&r, &s, pred), want, "{} on {pred:?}", alg.name());
                }
            }
        }
        let divisor = Relation::from_int_rows(&[&[10], &[11]]);
        for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
            let want = crate::division::divide(&r, &divisor, sem);
            for alg in reg.division_algorithms() {
                assert_eq!(alg.run(&r, &divisor, sem), want, "{} {sem:?}", alg.name());
            }
        }
    }

    #[test]
    fn auto_set_join_picks_by_predicate() {
        let reg = Registry::standard();
        let r = pairs(&[[1, 10], [1, 11]]);
        let s = pairs(&[[5, 10]]);
        assert_eq!(
            reg.auto_set_join(&r, &s, SetPredicate::Equals)
                .unwrap()
                .name(),
            "hash-set-equality"
        );
        assert_eq!(
            reg.auto_set_join(&r, &s, SetPredicate::IntersectsNonempty)
                .unwrap()
                .name(),
            "equijoin-intersect"
        );
        // Tiny containment input → nested loops.
        assert_eq!(
            reg.auto_set_join(&r, &s, SetPredicate::Contains)
                .unwrap()
                .name(),
            "nested-loop"
        );
    }

    #[test]
    fn auto_set_join_scales_with_input_stats() {
        let reg = Registry::standard();
        // > SMALL_INPUT tuples, small groups → 64-bit signatures.
        let rows: Vec<[i64; 2]> = (0..60).flat_map(|g| [[g, 2 * g], [g, 2 * g + 1]]).collect();
        let big = pairs(&rows);
        assert_eq!(
            reg.auto_set_join(&big, &big, SetPredicate::Contains)
                .unwrap()
                .name(),
            "signature64"
        );
        // Wide groups (≥ WIDE_SET_THRESHOLD values each) → wide signatures.
        let wide_rows: Vec<[i64; 2]> = (0..4).flat_map(|g| (0..20).map(move |v| [g, v])).collect();
        let wide = pairs(&wide_rows);
        assert_eq!(
            reg.auto_set_join(&wide, &wide, SetPredicate::Contains)
                .unwrap()
                .name(),
            "signature256"
        );
    }

    #[test]
    fn auto_division_picks_by_stats_and_semantics() {
        let reg = Registry::standard();
        let small = pairs(&[[1, 7], [2, 7]]);
        let divisor = Relation::from_int_rows(&[&[7]]);
        assert_eq!(
            reg.auto_division(&small, &divisor, DivisionSemantics::Containment)
                .unwrap()
                .name(),
            "sort-merge"
        );
        let rows: Vec<[i64; 2]> = (0..200).map(|i| [i / 4, i % 4]).collect();
        let big = pairs(&rows);
        assert_eq!(
            reg.auto_division(&big, &divisor, DivisionSemantics::Containment)
                .unwrap()
                .name(),
            "hash"
        );
        assert_eq!(
            reg.auto_division(&big, &divisor, DivisionSemantics::Equality)
                .unwrap()
                .name(),
            "counting"
        );
    }

    #[test]
    fn auto_with_workers_prefers_parallel_variants_on_large_inputs() {
        let reg = Registry::standard();
        // Fig-scale containment input: > PARALLEL_SETJOIN_INPUT tuples.
        let rows: Vec<[i64; 2]> = (0..1200)
            .flat_map(|g| (0..2).map(move |v| [g, v]))
            .collect();
        let big = pairs(&rows);
        assert_eq!(
            reg.auto_set_join_with(&big, &big, SetPredicate::Contains, 4)
                .unwrap()
                .name(),
            "parallel-signature"
        );
        // Same input, serial context: the serial pick is unchanged.
        assert_eq!(
            reg.auto_set_join_with(&big, &big, SetPredicate::Contains, 1)
                .unwrap()
                .name(),
            reg.auto_set_join(&big, &big, SetPredicate::Contains)
                .unwrap()
                .name()
        );
        // Equality keeps its dedicated quasilinear algorithm even in a
        // parallel context.
        assert_eq!(
            reg.auto_set_join_with(&big, &big, SetPredicate::Equals, 8)
                .unwrap()
                .name(),
            "hash-set-equality"
        );
        // Division: large dividend + workers ⇒ parallel-hash; serial
        // context unchanged.
        let drows: Vec<[i64; 2]> = (0..10_000).map(|i| [i / 4, i % 4]).collect();
        let dividend = pairs(&drows);
        let divisor = Relation::from_int_rows(&[&[0], &[1]]);
        assert_eq!(
            reg.auto_division_with(&dividend, &divisor, DivisionSemantics::Containment, 4)
                .unwrap()
                .name(),
            "parallel-hash"
        );
        assert_eq!(
            reg.auto_division_with(&dividend, &divisor, DivisionSemantics::Containment, 1)
                .unwrap()
                .name(),
            "hash"
        );
        // Small inputs never trigger the parallel variants, whatever the
        // worker count.
        let small = pairs(&[[1, 7], [2, 7]]);
        assert_eq!(
            reg.auto_division_with(&small, &divisor, DivisionSemantics::Containment, 8)
                .unwrap()
                .name(),
            "sort-merge"
        );
    }

    #[test]
    fn run_with_workers_defaults_to_run_for_serial_algorithms() {
        let reg = Registry::standard();
        let r = pairs(&[[1, 10], [1, 11], [2, 10]]);
        let s = pairs(&[[5, 10], [5, 11]]);
        for alg in reg.set_join_algorithms() {
            if alg.supports(SetPredicate::Contains) {
                assert_eq!(
                    alg.run_with_workers(&r, &s, SetPredicate::Contains, 4),
                    alg.run(&r, &s, SetPredicate::Contains),
                    "{}",
                    alg.name()
                );
            }
        }
        let divisor = Relation::from_int_rows(&[&[10], &[11]]);
        for alg in reg.division_algorithms() {
            assert_eq!(
                alg.run_with_workers(&r, &divisor, DivisionSemantics::Containment, 4),
                alg.run(&r, &divisor, DivisionSemantics::Containment),
                "{}",
                alg.name()
            );
        }
    }

    #[test]
    fn auto_never_picks_an_unsupported_algorithm() {
        let reg = Registry::standard();
        let r = pairs(&[[1, 10]]);
        for pred in [
            SetPredicate::Contains,
            SetPredicate::ContainedIn,
            SetPredicate::Equals,
            SetPredicate::IntersectsNonempty,
        ] {
            let alg = reg.auto_set_join(&r, &r, pred).unwrap();
            assert!(alg.supports(pred), "{} vs {pred:?}", alg.name());
        }
    }

    #[test]
    fn registration_shadows_by_name() {
        struct Always;
        impl SetJoinAlgorithm for Always {
            fn name(&self) -> &'static str {
                "nested-loop"
            }
            fn supports(&self, _p: SetPredicate) -> bool {
                true
            }
            fn complexity(&self, _p: SetPredicate) -> ComplexityClass {
                ComplexityClass::Linear
            }
            fn run(&self, r: &Relation, _s: &Relation, _p: SetPredicate) -> Relation {
                r.clone()
            }
        }
        let mut reg = Registry::standard().clone();
        reg.register_set_join(Arc::new(Always));
        let got = reg.find_set_join("nested-loop").unwrap();
        assert_eq!(
            got.complexity(SetPredicate::Contains),
            ComplexityClass::Linear,
            "later registration must shadow the standard entry"
        );
    }

    #[test]
    fn wide_signature_name_tracks_width() {
        assert_eq!(WideSignatureSetJoin { words: 2 }.name(), "signature128");
        assert_eq!(WideSignatureSetJoin { words: 4 }.name(), "signature256");
        assert_eq!(WideSignatureSetJoin { words: 3 }.name(), "signature-wide");
        // A one-word wide signature must not shadow the standard entry.
        assert_eq!(WideSignatureSetJoin { words: 1 }.name(), "signature-wide");
    }

    fn stats_pair(r: &Relation, s: &Relation) -> (TableStats, TableStats) {
        (TableStats::analyze(r), TableStats::analyze(s))
    }

    #[test]
    fn costed_auto_without_stats_is_the_threshold_selector() {
        let reg = Registry::standard();
        let model = CostModel::default();
        let rows: Vec<[i64; 2]> = (0..500).map(|i| [i / 4, i % 4]).collect();
        let big = pairs(&rows);
        let small = pairs(&[[1, 7], [2, 7]]);
        let divisor = Relation::from_int_rows(&[&[7]]);
        for (r, s) in [(&big, &divisor), (&small, &divisor)] {
            for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
                for workers in [1usize, 4] {
                    assert_eq!(
                        reg.auto_division_costed(r, s, sem, workers, None, &model)
                            .unwrap()
                            .name(),
                        reg.auto_division_with(r, s, sem, workers).unwrap().name(),
                        "stats off must reproduce the threshold pick"
                    );
                }
            }
        }
        for pred in [
            SetPredicate::Contains,
            SetPredicate::Equals,
            SetPredicate::IntersectsNonempty,
        ] {
            assert_eq!(
                reg.auto_set_join_costed(&big, &big, pred, 1, None, &model)
                    .unwrap()
                    .name(),
                reg.auto_set_join_with(&big, &big, pred, 1).unwrap().name()
            );
        }
    }

    #[test]
    fn costed_division_picks_by_scale_and_workers() {
        let reg = Registry::standard();
        let model = CostModel::default();
        // A divisor comfortably larger than the mean set size: per-group
        // divisor merges (sort-merge's cost) outweigh per-tuple hashing.
        let drows: Vec<[i64; 1]> = (0..8).map(|i| [i]).collect();
        let divisor = Relation::from_tuples(1, drows.iter().map(|r| Tuple::from_ints(r))).unwrap();
        // Tiny input: the allocation-free merge wins on setup cost.
        let small = pairs(&[[1, 0], [1, 1], [2, 0]]);
        let (rs, ss) = stats_pair(&small, &divisor);
        let pick = |r: &Relation, st: &(TableStats, TableStats), workers| {
            reg.auto_division_costed(
                r,
                &divisor,
                DivisionSemantics::Containment,
                workers,
                Some((&st.0, &st.1)),
                &model,
            )
            .unwrap()
            .name()
        };
        assert_eq!(pick(&small, &(rs, ss), 1), "sort-merge");
        // Fig-scale input: the one-pass counting division wins serial…
        let rows: Vec<[i64; 2]> = (0..60_000).map(|i| [i / 4, i % 4]).collect();
        let big = pairs(&rows);
        let st = stats_pair(&big, &divisor);
        assert_eq!(pick(&big, &st, 1), "counting");
        // …and the partitioned variant wins once workers amortize the
        // spawn cost.
        assert_eq!(pick(&big, &st, 4), "parallel-hash");
    }

    #[test]
    fn costed_set_join_prices_the_anchor_pruning() {
        let reg = Registry::standard();
        let model = CostModel::default();
        // Many groups over a small element domain — the regime where
        // anchor partitioning prunes the pair space and the
        // partition-based join wins even single-threaded.
        let rows: Vec<[i64; 2]> = (0..2000)
            .flat_map(|g| (0..6).map(move |v| [g, (g * 7 + v) % 64]))
            .collect();
        let big = pairs(&rows);
        let (rs, ss) = stats_pair(&big, &big);
        let alg = reg
            .auto_set_join_costed(
                &big,
                &big,
                SetPredicate::Contains,
                1,
                Some((&rs, &ss)),
                &model,
            )
            .unwrap();
        assert_eq!(alg.name(), "parallel-signature");
        // Small group counts: signatures win (spawn/partition overhead
        // dominates), and tiny inputs fall back to nested loops.
        let mid_rows: Vec<[i64; 2]> = (0..128)
            .flat_map(|g| (0..6).map(move |v| [g, (g * 7 + v) % 64]))
            .collect();
        let mid = pairs(&mid_rows);
        let (ms, _) = stats_pair(&mid, &mid);
        let alg = reg
            .auto_set_join_costed(
                &mid,
                &mid,
                SetPredicate::Contains,
                1,
                Some((&ms, &ms)),
                &model,
            )
            .unwrap();
        assert_eq!(alg.name(), "signature64");
        let tiny = pairs(&[[1, 10], [1, 11], [2, 10]]);
        let (ts, _) = stats_pair(&tiny, &tiny);
        let alg = reg
            .auto_set_join_costed(
                &tiny,
                &tiny,
                SetPredicate::Contains,
                1,
                Some((&ts, &ts)),
                &model,
            )
            .unwrap();
        assert_eq!(alg.name(), "nested-loop");
        // Dedicated (quasi)linear algorithms keep their predicates.
        let alg = reg
            .auto_set_join_costed(
                &big,
                &big,
                SetPredicate::Equals,
                1,
                Some((&rs, &ss)),
                &model,
            )
            .unwrap();
        assert_eq!(alg.name(), "hash-set-equality");
        let alg = reg
            .auto_set_join_costed(
                &big,
                &big,
                SetPredicate::IntersectsNonempty,
                1,
                Some((&rs, &ss)),
                &model,
            )
            .unwrap();
        assert_eq!(alg.name(), "equijoin-intersect");
    }

    #[test]
    fn costed_auto_never_picks_unsupported_and_prices_unknown_by_class() {
        struct Custom;
        impl SetJoinAlgorithm for Custom {
            fn name(&self) -> &'static str {
                "custom-linear"
            }
            fn supports(&self, p: SetPredicate) -> bool {
                p == SetPredicate::Contains
            }
            fn complexity(&self, _p: SetPredicate) -> ComplexityClass {
                ComplexityClass::Linear
            }
            fn run(&self, r: &Relation, _s: &Relation, _p: SetPredicate) -> Relation {
                r.clone()
            }
        }
        let mut reg = Registry::standard().clone();
        reg.register_set_join(Arc::new(Custom));
        let model = CostModel::default();
        let rows: Vec<[i64; 2]> = (0..4000).map(|i| [i / 4, i % 16]).collect();
        let big = pairs(&rows);
        let st = TableStats::analyze(&big);
        // A (claimed) linear algorithm beats every quadratic formula at
        // scale: the generic class fallback prices it competitively.
        let alg = reg
            .auto_set_join_costed(
                &big,
                &big,
                SetPredicate::Contains,
                1,
                Some((&st, &st)),
                &model,
            )
            .unwrap();
        assert_eq!(alg.name(), "custom-linear");
        // Unsupported predicates never see it.
        let alg = reg
            .auto_set_join_costed(
                &big,
                &big,
                SetPredicate::Equals,
                1,
                Some((&st, &st)),
                &model,
            )
            .unwrap();
        assert!(alg.supports(SetPredicate::Equals), "{}", alg.name());
    }

    #[test]
    fn thresholds_are_exposed_and_used() {
        // The constants are public so tests can sit exactly on the
        // boundary: one tuple past SMALL_INPUT flips the division pick.
        use super::thresholds::*;
        let divisor = Relation::from_int_rows(&[&[0]]);
        let at: Vec<[i64; 2]> = (0..SMALL_INPUT as i64 - 1).map(|i| [i, 0]).collect();
        let over: Vec<[i64; 2]> = (0..SMALL_INPUT as i64).map(|i| [i, 0]).collect();
        let reg = Registry::standard();
        assert_eq!(
            reg.auto_division(&pairs(&at), &divisor, DivisionSemantics::Containment)
                .unwrap()
                .name(),
            "sort-merge"
        );
        assert_eq!(
            reg.auto_division(&pairs(&over), &divisor, DivisionSemantics::Containment)
                .unwrap()
                .name(),
            "hash"
        );
        const { assert!(WIDE_SET_THRESHOLD > 0) };
        const { assert!(PARALLEL_SETJOIN_INPUT < PARALLEL_DIVISION_INPUT) };
    }

    #[test]
    fn complexity_classes_render() {
        assert_eq!(ComplexityClass::Linear.to_string(), "O(n)");
        assert_eq!(ComplexityClass::Quasilinear.to_string(), "O(n log n)");
        assert_eq!(ComplexityClass::Quadratic.to_string(), "O(n²)");
        assert!(ComplexityClass::Linear < ComplexityClass::Quadratic);
    }
}
