//! A small deterministic PRNG (SplitMix64).
//!
//! Every experiment in this workspace must be bit-reproducible from a
//! seed, across machines and Rust versions. SplitMix64 is ~10 lines,
//! passes BigCrush, and needs no dependency — see DESIGN.md for why this
//! is used instead of the `rand` crate.

/// SplitMix64 generator state.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded construction; equal seeds give equal streams, forever.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero. Uses rejection
    /// sampling to avoid modulo bias.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Uniform in the inclusive integer range `[lo, hi]`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        lo + self.below((hi - lo) as u64 + 1) as i64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (k ≤ n), ascending.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n);
        // Floyd's algorithm.
        let mut chosen = std::collections::BTreeSet::new();
        for j in (n - k)..n {
            let t = self.below(j as u64 + 1) as usize;
            if !chosen.insert(t) {
                chosen.insert(j);
            }
        }
        chosen.into_iter().collect()
    }
}

/// A Zipf(θ) sampler over `{0, …, n−1}` by inverse-CDF on precomputed
/// cumulative weights. θ = 0 is uniform; θ ≈ 1 is the classic Zipf.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Build the sampler for `n` items with skew `theta ≥ 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0);
        assert!(theta >= 0.0);
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 1..=n {
            total += 1.0 / (i as f64).powf(theta);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Zipf { cumulative }
    }

    /// Draw one index.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.unit_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        // bound 1 always 0
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn range_inclusive() {
        let mut r = SplitMix64::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            seen_lo |= v == -3;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn unit_interval() {
        let mut r = SplitMix64::new(5);
        let mean: f64 = (0..10_000).map(|_| r.unit_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_in_range() {
        let mut r = SplitMix64::new(11);
        for _ in 0..50 {
            let s = r.sample_indices(20, 7);
            assert_eq!(s.len(), 7);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 20));
        }
        assert_eq!(r.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
        assert!(r.sample_indices(5, 0).is_empty());
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        let mut r = SplitMix64::new(17);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((1700..2300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn zipf_skews_toward_head() {
        let z = Zipf::new(100, 1.0);
        let mut r = SplitMix64::new(23);
        let mut head = 0usize;
        for _ in 0..5000 {
            if z.sample(&mut r) < 10 {
                head += 1;
            }
        }
        // With θ=1 over 100 items, the top-10 mass is ~56%.
        assert!(head > 2000, "head mass {head}/5000");
    }
}
