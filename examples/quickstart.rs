//! Quickstart: build an [`Engine`], run a division three ways, and watch
//! the dichotomy.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use setjoins::prelude::*;
use sj_core::{analyze, Verdict};
use sj_storage::display::render_relation;

fn main() {
    // 1. A tiny enrollment database: which students take which courses?
    let enrolled = Relation::from_str_rows(&[
        &["ada", "algebra"],
        &["ada", "calculus"],
        &["ada", "databases"],
        &["bob", "algebra"],
        &["bob", "databases"],
        &["eve", "calculus"],
    ]);
    let required = Relation::from_str_rows(&[&["algebra"], &["databases"]]);

    println!(
        "{}",
        render_relation(&enrolled, "Enrolled", &["student", "course"])
    );
    println!("{}", render_relation(&required, "Required", &["course"]));

    // 2. One engine over the data. Division routes through the algorithm
    // registry — the default `AlgorithmChoice::Auto` picks from the
    // semantics and input size; naming an algorithm is a one-line change.
    let mut db = Database::new();
    db.set("R", enrolled);
    db.set("S", required);
    let engine = Engine::new(db)
        .strategy(Strategy::Naive)
        .instrument(Instrument::Cardinalities);
    let graduates = engine
        .divide("R", "S", DivisionSemantics::Containment)
        .unwrap();
    println!(
        "{}",
        render_relation(&graduates.relation, "Enrolled ÷ Required", &["student"])
    );
    println!(
        "(direct division ran {} — {})",
        graduates.algorithm, graduates.complexity
    );

    // 3. The same query as a classical relational-algebra plan …
    let plan = sj_algebra::division::division_double_difference("R", "S");
    println!("\nclassical RA plan: {plan}");
    let out = engine.query(plan).run().unwrap();
    assert_eq!(out.relation, graduates.relation);
    let report = out.report.unwrap();
    println!(
        "same answer; but the plan's largest intermediate holds {} tuples \
         on a {}-tuple database:",
        report.max_intermediate(),
        report.db_size()
    );
    println!("{}", report.render());

    // 4. … and the paper explains why: division is not expressible in the
    // semijoin algebra, so EVERY RA plan has a quadratic intermediate
    // (Proposition 26). The analyzer finds the witness:
    let plan = sj_algebra::division::division_double_difference("R", "S");
    let schema = engine.db().schema();
    match analyze(&plan, &schema, &[engine.db().clone()]).unwrap() {
        Verdict::Quadratic { witness } => {
            println!(
                "analyzer verdict: QUADRATIC — witnessed at join node {} by the \
                 pair {} ⋈ {} with free values {:?} / {:?}",
                witness.node_id, witness.a, witness.b, witness.f1, witness.f2
            );
            // The pump construction allocates order-respecting fresh
            // values over the integers; renumber the string data first.
            let mut dict: Vec<Value> = witness.db.active_domain();
            dict.sort();
            let renum = |v: &Value| Value::int(dict.iter().position(|w| w == v).unwrap() as i64);
            let int_witness = sj_core::QuadraticWitness {
                db: witness.db.map_values(renum),
                a: witness.a.iter().map(renum).collect(),
                b: witness.b.iter().map(renum).collect(),
                f1: witness.f1.iter().map(renum).collect(),
                f2: witness.f2.iter().map(renum).collect(),
                ..*witness
            };
            let pump = int_witness.pump(&[], 16).unwrap();
            println!("pumping the witness (Lemma 24):");
            for n in [2usize, 4, 8, 16] {
                let (size, pairs) = pump.verify(n);
                println!(
                    "  n = {n:>2}: |Dn| = {size:>3} (linear), joining pairs = {pairs:>4} (= n²)"
                );
            }
        }
        other => println!("analyzer verdict: {other:?}"),
    }

    // 5. With grouping and counting (Section 5 of the paper), a linear
    // expression exists:
    let counting = sj_algebra::division::division_counting("R", "S");
    println!("\nextended-RA plan (linear): {counting}");
}
