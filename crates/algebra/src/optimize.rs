//! Algebraic plan rewrites.
//!
//! The paper's practical moral is that *semijoins are the linear core of
//! the relational algebra*: a query processor that recognizes when a join
//! is only used to filter one side can replace it by a semijoin and stay
//! linear. This module implements that and the classical enabling
//! rewrites, all semantics-preserving (property-tested against the
//! evaluator in `sj-eval`):
//!
//! * [`push_down_selections`] — move `σ` below `∪` and `−`, through `π`
//!   (remapping column references), into the left side of `⋈` when every
//!   referenced column is a left column, and into the left of `⋉` always.
//! * [`prune_projections`] — collapse `π∘π`, drop identity projections.
//! * [`joins_to_semijoins`] — **semijoin reduction**: rewrite
//!   `π_cols(E₁ ⋈θ E₂)` into `π_cols(E₁ ⋉θ E₂)` whenever `cols` only
//!   references the left operand and θ is *right-lossless* for the kept
//!   columns — i.e. each left tuple's contribution does not depend on how
//!   many right tuples match. This turns quadratic intermediates into
//!   linear ones exactly in the cases Theorem 18 covers syntactically.
//! * [`Pass`] / [`Pipeline`] / [`OptimizeLevel`] — the rewrites as a
//!   configurable pass pipeline: which passes run, and to what fixpoint,
//!   is data rather than code. `sj-eval`'s `Engine` carries a `Pipeline`
//!   as its optimizer configuration.
//! * [`optimize`] — a fixpoint driver applying all of the above
//!   (equivalent to [`OptimizeLevel::Full`]).

use crate::error::AlgebraError;
use crate::expr::{Expr, Selection};
use sj_storage::Schema;
use std::fmt;

/// One algebraic rewrite pass, as a value.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Pass {
    /// [`joins_to_semijoins`] — the paper's semijoin reduction.
    SemijoinReduction,
    /// [`push_down_selections`].
    SelectionPushdown,
    /// [`prune_projections`].
    ProjectionPruning,
}

impl Pass {
    /// Apply this pass once.
    pub fn apply(self, e: &Expr, schema: &Schema) -> Result<Expr, AlgebraError> {
        Ok(match self {
            Pass::SemijoinReduction => joins_to_semijoins(e, schema)?,
            Pass::SelectionPushdown => push_down_selections(e, schema),
            Pass::ProjectionPruning => prune_projections(e),
        })
    }

    /// Short name for reports and `EXPLAIN` output.
    pub fn name(self) -> &'static str {
        match self {
            Pass::SemijoinReduction => "semijoin-reduction",
            Pass::SelectionPushdown => "selection-pushdown",
            Pass::ProjectionPruning => "projection-pruning",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An ordered list of rewrite passes run to a (bounded) fixpoint — the
/// optimizer as configuration. Build one from an [`OptimizeLevel`] or
/// assemble a custom pass list with [`Pipeline::new`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Pipeline {
    passes: Vec<Pass>,
    max_rounds: usize,
}

impl Pipeline {
    /// A pipeline over the given passes, iterated to a fixpoint (at most
    /// 32 rounds — every standard pass shrinks a measure, so real inputs
    /// converge in a handful).
    pub fn new(passes: impl IntoIterator<Item = Pass>) -> Pipeline {
        Pipeline {
            passes: passes.into_iter().collect(),
            max_rounds: 32,
        }
    }

    /// The empty pipeline: validates, then returns the expression as-is.
    pub fn empty() -> Pipeline {
        Pipeline::new([])
    }

    /// The passes, in application order.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// True when the pipeline rewrites nothing.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Validate `e` against `schema`, then run every pass in order,
    /// repeating until a full round changes nothing.
    pub fn run(&self, e: &Expr, schema: &Schema) -> Result<Expr, AlgebraError> {
        e.arity(schema)?;
        if self.passes.is_empty() {
            // The Off pipeline is the engine's per-query default: skip
            // the clone-and-compare fixpoint round entirely.
            return Ok(e.clone());
        }
        let mut current = e.clone();
        for _ in 0..self.max_rounds {
            let mut next = current.clone();
            for pass in &self.passes {
                next = pass.apply(&next, schema)?;
            }
            if next == current {
                break;
            }
            current = next;
        }
        Ok(current)
    }
}

/// How hard the optimizer tries — the coarse configuration knob carried by
/// `sj-eval`'s `Engine`; each level names a [`Pipeline`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum OptimizeLevel {
    /// No rewrites: evaluate the expression exactly as written. The right
    /// choice when the expression's own intermediate sizes are the object
    /// of study (all the paper's Definition 16 measurements).
    #[default]
    Off,
    /// Structural cleanups only: selection pushdown and projection
    /// pruning. Never changes the join/semijoin skeleton.
    Structural,
    /// Everything, including the paper's semijoin reduction — joins whose
    /// output is projected to left columns become semijoins (linear
    /// intermediates wherever Theorem 18 applies syntactically).
    Full,
}

impl OptimizeLevel {
    /// The pass pipeline this level denotes.
    pub fn pipeline(self) -> Pipeline {
        match self {
            OptimizeLevel::Off => Pipeline::empty(),
            OptimizeLevel::Structural => {
                Pipeline::new([Pass::SelectionPushdown, Pass::ProjectionPruning])
            }
            OptimizeLevel::Full => Pipeline::new([
                Pass::SemijoinReduction,
                Pass::SelectionPushdown,
                Pass::ProjectionPruning,
            ]),
        }
    }
}

impl fmt::Display for OptimizeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptimizeLevel::Off => write!(f, "off"),
            OptimizeLevel::Structural => write!(f, "structural"),
            OptimizeLevel::Full => write!(f, "full"),
        }
    }
}

/// Apply all rewrites to a fixpoint (bounded, since every rewrite strictly
/// shrinks a measure or is applied once). Thin wrapper over
/// [`OptimizeLevel::Full`]'s pipeline.
pub fn optimize(e: &Expr, schema: &Schema) -> Result<Expr, AlgebraError> {
    OptimizeLevel::Full.pipeline().run(e, schema)
}

/// Remap a selection through a projection: column `i` of `π_cols(E)`'s
/// output is column `cols[i-1]` of `E`, so `σ(π_cols(E)) = π_cols(σ'(E))`
/// with every column reference substituted. Returns `None` when a
/// referenced column is out of the projection's range (malformed input —
/// leave the node unchanged rather than rewrite or panic).
fn remap_selection(sel: &Selection, cols: &[usize]) -> Option<Selection> {
    let remap = |i: usize| cols.get(i.checked_sub(1)?).copied();
    Some(match sel {
        Selection::Eq(i, j) => Selection::Eq(remap(*i)?, remap(*j)?),
        Selection::Lt(i, j) => Selection::Lt(remap(*i)?, remap(*j)?),
        Selection::EqConst(i, c) => Selection::EqConst(remap(*i)?, c.clone()),
    })
}

/// Push selections toward the leaves. Only structurally safe moves are
/// made; anything else is left in place. The schema is consulted for the
/// operand arities of `⋈`/`⋉` (to decide whether a selection is a pure
/// left-side selection); subexpressions whose arity cannot be determined
/// are conservatively left untouched.
pub fn push_down_selections(e: &Expr, schema: &Schema) -> Expr {
    match e {
        Expr::Select(sel, inner) => {
            let inner = push_down_selections(inner, schema);
            match inner {
                // σ(E₁ ∪ E₂) = σ(E₁) ∪ σ(E₂)
                Expr::Union(a, b) => push_down_selections(&Expr::Select(sel.clone(), a), schema)
                    .union(push_down_selections(&Expr::Select(sel.clone(), b), schema)),
                // σ(E₁ − E₂) = σ(E₁) − E₂  (difference filters the left)
                Expr::Diff(a, b) => {
                    push_down_selections(&Expr::Select(sel.clone(), a), schema).diff(*b)
                }
                // σ(π_cols(E)) = π_cols(σ'(E)) with columns remapped —
                // every output column of π is an input column, so any
                // selection survives the trip below the projection.
                Expr::Project(cols, a) => match remap_selection(sel, &cols) {
                    Some(remapped) => {
                        push_down_selections(&Expr::Select(remapped, a), schema).project(cols)
                    }
                    None => Expr::Select(sel.clone(), Box::new(a.project(cols))),
                },
                // σ(E₁ ⋈θ E₂) = σ(E₁) ⋈θ E₂ when σ only references the
                // left operand's columns (all ≤ n₁).
                Expr::Join(theta, a, b) => match a.arity(schema) {
                    Ok(n1) if sel.columns().iter().all(|&c| c >= 1 && c <= n1) => {
                        push_down_selections(&Expr::Select(sel.clone(), a), schema).join(theta, *b)
                    }
                    _ => Expr::Select(sel.clone(), Box::new(a.join(theta, *b))),
                },
                Expr::Semijoin(theta, a, b) => {
                    // A semijoin's output columns are the left operand's;
                    // every selection on it is a left selection.
                    let pushed = push_down_selections(&Expr::Select(sel.clone(), a), schema);
                    pushed.semijoin(theta, *b)
                }
                other => Expr::Select(sel.clone(), Box::new(other)),
            }
        }
        Expr::Union(a, b) => push_down_selections(a, schema).union(push_down_selections(b, schema)),
        Expr::Diff(a, b) => push_down_selections(a, schema).diff(push_down_selections(b, schema)),
        Expr::Project(cols, a) => push_down_selections(a, schema).project(cols.clone()),
        Expr::ConstTag(c, a) => push_down_selections(a, schema).tag(c.clone()),
        Expr::Join(t, a, b) => {
            push_down_selections(a, schema).join(t.clone(), push_down_selections(b, schema))
        }
        Expr::Semijoin(t, a, b) => {
            push_down_selections(a, schema).semijoin(t.clone(), push_down_selections(b, schema))
        }
        Expr::GroupCount(cols, a) => push_down_selections(a, schema).group_count(cols.clone()),
        Expr::Rel(_) => e.clone(),
    }
}

/// Merge nested projections (`π_p(π_q(E)) = π_{q∘p}(E)`) and drop
/// identity projections when the arity is syntactically evident.
///
/// Malformed nodes (an outer column outside the inner projection's range)
/// are left unchanged rather than composed: the rewrite is total on any
/// input, validated or not, and never panics — `optimize` validates up
/// front, but this function is public on its own.
pub fn prune_projections(e: &Expr) -> Expr {
    match e {
        Expr::Project(outer, inner) => {
            let inner = prune_projections(inner);
            match inner {
                Expr::Project(inner_cols, base)
                    if outer.iter().all(|&o| o >= 1 && o <= inner_cols.len()) =>
                {
                    let composed: Vec<usize> = outer.iter().map(|&o| inner_cols[o - 1]).collect();
                    prune_projections(&base.project(composed))
                }
                other => other.project(outer.clone()),
            }
        }
        Expr::Union(a, b) => prune_projections(a).union(prune_projections(b)),
        Expr::Diff(a, b) => prune_projections(a).diff(prune_projections(b)),
        Expr::Select(s, a) => Expr::Select(s.clone(), Box::new(prune_projections(a))),
        Expr::ConstTag(c, a) => prune_projections(a).tag(c.clone()),
        Expr::Join(t, a, b) => prune_projections(a).join(t.clone(), prune_projections(b)),
        Expr::Semijoin(t, a, b) => prune_projections(a).semijoin(t.clone(), prune_projections(b)),
        Expr::GroupCount(cols, a) => prune_projections(a).group_count(cols.clone()),
        Expr::Rel(_) => e.clone(),
    }
}

/// **Semijoin reduction**: rewrite `π_cols(E₁ ⋈θ E₂)` to
/// `π_cols(E₁ ⋉θ E₂)` when
///
/// 1. every projected column refers to the left operand (`≤ n₁`), and
/// 2. θ is equality-only with every right column of `E₂` constrained
///    (each left tuple matches at most one *distinct* right tuple after
///    projecting `E₂` to its constrained columns), **or** the projection
///    is duplicate-eliminating anyway — which under set semantics it
///    always is. Under set semantics condition 1 alone suffices: the
///    projection of the join to left columns equals the projection of the
///    semijoin, because each left tuple appears in the join output iff it
///    has a θ-match.
///
/// The rewrite therefore fires on condition 1 alone, for joins under a
/// projection. It applies recursively.
pub fn joins_to_semijoins(e: &Expr, schema: &Schema) -> Result<Expr, AlgebraError> {
    Ok(match e {
        Expr::Project(cols, inner) => {
            if let Expr::Join(theta, a, b) = inner.as_ref() {
                let n1 = a.arity(schema)?;
                if cols.iter().all(|&c| c <= n1) {
                    let a2 = joins_to_semijoins(a, schema)?;
                    let b2 = joins_to_semijoins(b, schema)?;
                    return Ok(a2.semijoin(theta.clone(), b2).project(cols.clone()));
                }
            }
            joins_to_semijoins(inner, schema)?.project(cols.clone())
        }
        Expr::Union(a, b) => joins_to_semijoins(a, schema)?.union(joins_to_semijoins(b, schema)?),
        Expr::Diff(a, b) => joins_to_semijoins(a, schema)?.diff(joins_to_semijoins(b, schema)?),
        Expr::Select(s, a) => Expr::Select(s.clone(), Box::new(joins_to_semijoins(a, schema)?)),
        Expr::ConstTag(c, a) => joins_to_semijoins(a, schema)?.tag(c.clone()),
        Expr::Join(t, a, b) => {
            joins_to_semijoins(a, schema)?.join(t.clone(), joins_to_semijoins(b, schema)?)
        }
        Expr::Semijoin(t, a, b) => {
            joins_to_semijoins(a, schema)?.semijoin(t.clone(), joins_to_semijoins(b, schema)?)
        }
        Expr::GroupCount(cols, a) => joins_to_semijoins(a, schema)?.group_count(cols.clone()),
        Expr::Rel(_) => e.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Condition;
    use crate::display::to_text;

    fn schema() -> Schema {
        Schema::new([("R", 2), ("S", 2), ("T", 1)])
    }

    #[test]
    fn semijoin_reduction_fires_on_left_projection() {
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .project([1, 2]);
        let o = joins_to_semijoins(&e, &schema()).unwrap();
        assert_eq!(to_text(&o), "project[1,2](semijoin[2=1](R, S))");
    }

    #[test]
    fn semijoin_reduction_blocked_by_right_columns() {
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .project([1, 3]);
        let o = joins_to_semijoins(&e, &schema()).unwrap();
        assert_eq!(o, e, "projection keeps a right column — must not rewrite");
    }

    #[test]
    fn semijoin_reduction_recurses_into_operands() {
        let inner = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("T"))
            .project([1]);
        let e = inner
            .clone()
            .join(Condition::eq(1, 1), Expr::rel("S"))
            .project([1]);
        let o = joins_to_semijoins(&e, &schema()).unwrap();
        assert_eq!(
            to_text(&o),
            "project[1](semijoin[1=1](project[1](semijoin[2=1](R, T)), S))"
        );
    }

    #[test]
    fn projection_composition() {
        let e = Expr::rel("R").project([2, 1]).project([2, 2]);
        let o = prune_projections(&e);
        assert_eq!(to_text(&o), "project[1,1](R)");
    }

    #[test]
    fn selection_pushes_through_union_and_diff() {
        let e = Expr::rel("R").union(Expr::rel("S")).select_eq(1, 2);
        let o = push_down_selections(&e, &schema());
        assert_eq!(to_text(&o), "union(select[1=2](R), select[1=2](S))");
        let d = Expr::rel("R").diff(Expr::rel("S")).select_lt(1, 2);
        let od = push_down_selections(&d, &schema());
        assert_eq!(to_text(&od), "diff(select[1<2](R), S)");
    }

    #[test]
    fn selection_pushes_through_semijoin_left() {
        let e = Expr::rel("R")
            .semijoin(Condition::eq(2, 1), Expr::rel("T"))
            .select_eq(1, 2);
        let o = push_down_selections(&e, &schema());
        assert_eq!(to_text(&o), "semijoin[2=1](select[1=2](R), T)");
    }

    #[test]
    fn selection_pushes_through_projection_with_remap() {
        // σ₁₌₂(π₂,₁(R)) = π₂,₁(σ₂₌₁(R)): output column 1 is input column
        // 2 and vice versa.
        let e = Expr::rel("R").project([2, 1]).select_eq(1, 2);
        let o = push_down_selections(&e, &schema());
        assert_eq!(to_text(&o), "project[2,1](select[2=1](R))");
        // The constant form remaps its single column.
        let c = Expr::rel("R")
            .project([2])
            .select_const(1, sj_storage::Value::int(7));
        let oc = push_down_selections(&c, &schema());
        assert_eq!(to_text(&oc), "project[2](select[2={7}](R))");
        // Duplicated projection columns remap to the same source column.
        let d = Expr::rel("R").project([2, 2]).select_lt(1, 2);
        let od = push_down_selections(&d, &schema());
        assert_eq!(to_text(&od), "project[2,2](select[2<2](R))");
    }

    #[test]
    fn selection_pushes_into_join_left() {
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .select_lt(1, 2);
        let o = push_down_selections(&e, &schema());
        assert_eq!(to_text(&o), "join[2=1](select[1<2](R), S)");
    }

    #[test]
    fn selection_referencing_right_join_columns_stays_put() {
        // Column 3 belongs to S — the selection must not move.
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .select_eq(1, 3);
        let o = push_down_selections(&e, &schema());
        assert_eq!(o, e);
    }

    #[test]
    fn pushdown_leaves_malformed_projection_selection_alone() {
        // σ₃₌₁ over a 1-column projection is malformed; no rewrite, no
        // panic.
        let e = Expr::rel("R").project([1]).select_eq(3, 1);
        let o = push_down_selections(&e, &schema());
        assert_eq!(o, e);
        // Same for an unknown relation under a join: arity is unknowable,
        // so the selection stays put.
        let u = Expr::rel("Nope")
            .join(Condition::always(), Expr::rel("S"))
            .select_eq(1, 1);
        let ou = push_down_selections(&u, &schema());
        assert_eq!(ou, u);
    }

    #[test]
    fn pushdown_semantics_on_remapped_projection() {
        // End-to-end check that the π-remap rewrite preserves results.
        use sj_storage::{Database, Relation};
        let mut db = Database::new();
        db.set("R", Relation::from_int_rows(&[&[1, 2], &[2, 2], &[3, 1]]));
        let e = Expr::rel("R").project([2, 1]).select_eq(1, 2);
        let o = push_down_selections(&e, &db.schema());
        assert_ne!(o, e, "rewrite should fire");
        // Evaluate both by hand through the reference semantics: compare
        // projected-selected row sets.
        let rows = |ex: &Expr| -> Vec<Vec<i64>> {
            // tiny structural interpreter for this test's two shapes
            fn eval(ex: &Expr, r: &[(i64, i64)]) -> Vec<Vec<i64>> {
                match ex {
                    Expr::Rel(_) => r.iter().map(|&(a, b)| vec![a, b]).collect(),
                    Expr::Project(cols, inner) => {
                        let mut out: Vec<Vec<i64>> = eval(inner, r)
                            .into_iter()
                            .map(|t| cols.iter().map(|&c| t[c - 1]).collect())
                            .collect();
                        out.sort_unstable();
                        out.dedup();
                        out
                    }
                    Expr::Select(Selection::Eq(i, j), inner) => eval(inner, r)
                        .into_iter()
                        .filter(|t| t[i - 1] == t[j - 1])
                        .collect(),
                    _ => unreachable!("test shapes only"),
                }
            }
            eval(ex, &[(1, 2), (2, 2), (3, 1)])
        };
        assert_eq!(rows(&e), rows(&o));
    }

    #[test]
    fn prune_projections_tolerates_out_of_range_columns() {
        // π₅(π₁(R)) is malformed (5 > 1); before the fix this panicked on
        // `inner_cols[o - 1]`. Now the node is left unchanged.
        let e = Expr::rel("R").project([1]).project([5]);
        let o = prune_projections(&e);
        assert_eq!(o, e);
        // A zero column is equally out of range.
        let z = Expr::rel("R").project([1, 2]).project([0]);
        let oz = prune_projections(&z);
        assert_eq!(oz, z);
        // Well-formed composition still fires around malformed nodes.
        let mixed = Expr::rel("R").project([2, 1]).project([2, 2]).project([9]);
        let om = prune_projections(&mixed);
        assert_eq!(to_text(&om), "project[9](project[1,1](R))");
    }

    #[test]
    fn optimize_fixpoint_turns_division_inner_into_semijoins_where_legal() {
        // The double-difference division plan has a product under π₁ via
        // the *difference*, not directly — the optimizer must NOT alter
        // semantics. We just check it runs to fixpoint and preserves
        // validity.
        let s = Schema::new([("R", 2), ("S", 1)]);
        let e = crate::division::division_double_difference("R", "S");
        let o = optimize(&e, &s).unwrap();
        assert_eq!(o.arity(&s).unwrap(), 1);
    }

    #[test]
    fn levels_denote_expected_pipelines() {
        assert!(OptimizeLevel::Off.pipeline().is_empty());
        assert_eq!(
            OptimizeLevel::Structural.pipeline().passes(),
            &[Pass::SelectionPushdown, Pass::ProjectionPruning]
        );
        assert_eq!(
            OptimizeLevel::Full.pipeline().passes(),
            &[
                Pass::SemijoinReduction,
                Pass::SelectionPushdown,
                Pass::ProjectionPruning
            ]
        );
        assert_eq!(OptimizeLevel::default(), OptimizeLevel::Off);
    }

    #[test]
    fn off_pipeline_is_identity_but_still_validates() {
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .project([1, 2]);
        assert_eq!(OptimizeLevel::Off.pipeline().run(&e, &schema()).unwrap(), e);
        // Validation still fires on malformed input.
        assert!(OptimizeLevel::Off
            .pipeline()
            .run(&Expr::rel("Nope"), &schema())
            .is_err());
    }

    #[test]
    fn full_pipeline_agrees_with_optimize() {
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .project([1, 2])
            .select_eq(1, 2);
        assert_eq!(
            OptimizeLevel::Full.pipeline().run(&e, &schema()).unwrap(),
            optimize(&e, &schema()).unwrap()
        );
    }

    #[test]
    fn structural_pipeline_keeps_the_join_skeleton() {
        let e = Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .project([1, 2]);
        let o = OptimizeLevel::Structural
            .pipeline()
            .run(&e, &schema())
            .unwrap();
        assert!(
            o.subexpressions()
                .iter()
                .any(|s| matches!(s, Expr::Join(..))),
            "structural level must not run semijoin reduction: {o}"
        );
        let full = OptimizeLevel::Full.pipeline().run(&e, &schema()).unwrap();
        assert!(
            full.subexpressions()
                .iter()
                .any(|s| matches!(s, Expr::Semijoin(..))),
            "full level does: {full}"
        );
    }

    #[test]
    fn pass_names_render() {
        assert_eq!(Pass::SemijoinReduction.to_string(), "semijoin-reduction");
        assert_eq!(OptimizeLevel::Full.to_string(), "full");
        assert_eq!(OptimizeLevel::Off.to_string(), "off");
    }

    #[test]
    fn optimize_makes_lousy_bar_join_plan_semijoin_shaped() {
        let s = Schema::new([("Likes", 2), ("Serves", 2), ("Visits", 2)]);
        let e = crate::division::example3_lousy_bar_ra();
        let o = optimize(&e, &s).unwrap();
        // The outer join under π₁ becomes a semijoin.
        assert!(
            to_text(&o).starts_with("project[1](semijoin["),
            "optimized: {o}"
        );
    }
}
