//! E11 — set-containment join: nested-loop vs signature filtering, on
//! uniform and Zipf element distributions. Both quadratic in the group
//! counts (no better algorithm is known); signatures win the constant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_setjoin::SetPredicate;
use sj_workload::{ElementDist, SetJoinWorkload, SetSizeDist};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("setjoin_shootout");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for groups in [128usize, 512, 2048] {
        for (dist_name, dist) in [
            ("uniform", ElementDist::Uniform),
            ("zipf", ElementDist::Zipf(1.0)),
        ] {
            let w = SetJoinWorkload {
                r_groups: groups,
                s_groups: groups,
                set_size: SetSizeDist::Uniform(2, 10),
                domain: 64,
                elements: dist,
                seed: 0x5E71,
            };
            let (r, s) = w.generate();
            group.bench_with_input(
                BenchmarkId::new(format!("nested_loop/{dist_name}"), groups),
                &(&r, &s),
                |b, (r, s)| {
                    b.iter(|| sj_setjoin::nested_loop_set_join(r, s, SetPredicate::Contains))
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("signature/{dist_name}"), groups),
                &(&r, &s),
                |b, (r, s)| b.iter(|| sj_setjoin::signature_set_join(r, s, SetPredicate::Contains)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("equality_hash/{dist_name}"), groups),
                &(&r, &s),
                |b, (r, s)| b.iter(|| sj_setjoin::hash_set_equality_join(r, s)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("inverted_index/{dist_name}"), groups),
                &(&r, &s),
                |b, (r, s)| b.iter(|| sj_setjoin::inverted_index_set_join(r, s)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("signature256/{dist_name}"), groups),
                &(&r, &s),
                |b, (r, s)| {
                    b.iter(|| sj_setjoin::wide_signature_set_join(r, s, SetPredicate::Contains, 4))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
