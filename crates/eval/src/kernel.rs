//! The partition-aware kernel layer: one entry point per binary operator
//! that composes the two performance knobs orthogonally.
//!
//! Every kernel takes the [`Execution`] mode *and* a worker count and
//! dispatches on both:
//!
//! * `workers ≤ 1` — the serial operators run directly: the chunked
//!   columnar kernels of [`crate::ops_vec`] under
//!   [`Execution::Vectorized`], the row operators of [`crate::ops`]
//!   under [`Execution::RowAtATime`]. No partitioning, no stats (a
//!   serial node reports no partitions).
//! * `workers > 1` — both operands are hash-partitioned on the equality
//!   key into ascending tuple-index lists
//!   (`Relation::partition_indices`), the partition pairs are fanned out
//!   over scoped worker threads, and *each partition* runs the kernel
//!   the `Execution` knob selects: the row index-view kernels
//!   (`join_idx` et al.), or the vectorized gather-view kernels
//!   (`join_view` et al.) that hash and compare through the zero-copy
//!   [`ColsView`] columns of the shared operands. Per-partition
//!   [`PartitionStat`]s are collected either way, so instrumented
//!   reports are execution-mode agnostic.
//!
//! The vectorized partition kernels are the chunked kernels of
//! [`crate::ops_vec`] re-expressed over gather views: key hashes are
//! computed column-at-a-time through [`sj_storage::ColGather`] (a dense
//! `vals[idx[i]]` loop per typed column — no `Value` is cloned or boxed
//! on either side of the hash table), hash-paired rows are confirmed
//! with exact cell comparisons ([`ColsView::cell_eq`]), and the merge
//! variants compare key prefixes through [`ColsView::cell_cmp`] (an
//! `i64` or dictionary-code compare on typed columns). Conditions with
//! no equality atom keep the row nested-loop kernel under either mode —
//! there is nothing to vectorize in a cartesian filter.
//!
//! Output is byte-identical across all four `(Execution, workers)`
//! quadrants: partitions are key-disjoint, so one canonicalization pass
//! over the concatenated outputs restores the global order, and the
//! differential suites (`tests/parallel.rs`, `tests/vectorized.rs`)
//! hold every combination to the serial row reference.

use crate::exec::Execution;
use crate::ops::{self, split_condition};
use crate::ops_vec::hash_view_rows;
use sj_algebra::Condition;
use sj_setjoin::parallel::fan_out;
use sj_storage::{ColsView, FxHashMap, Relation, Tuple, Value};
use std::time::{Duration, Instant};

/// Execution record of one partition of a partition-parallel operator,
/// surfaced through [`crate::NodeStat::partitions`] so instrumented runs
/// expose the per-partition build/probe timings and the skew between
/// partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionStat {
    /// Partition index (stable: a pure function of the tuple key hash).
    pub partition: usize,
    /// Left-operand tuples routed to this partition.
    pub left_rows: usize,
    /// Right-operand tuples routed to this partition.
    pub right_rows: usize,
    /// Output tuples this partition produced.
    pub out_rows: usize,
    /// Wall-clock time of this partition's build + probe.
    pub elapsed: Duration,
}

// ---------------------------------------------------------------------------
// Unified operator entry points: (Execution, workers) → kernel
// ---------------------------------------------------------------------------

/// `r₁ ⋈θ r₂` under the given execution mode and worker count. Serial
/// (`workers ≤ 1`) runs report no partitions; parallel runs report one
/// [`PartitionStat`] per partition.
pub fn join(
    r1: &Relation,
    r2: &Relation,
    theta: &Condition,
    exec: Execution,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    let mut span = sj_obs::span!(
        "kernel.join",
        left = r1.len(),
        right = r2.len(),
        workers = workers.max(1)
    );
    let (rel, stats) = if workers <= 1 {
        let rel = if exec.is_vectorized() {
            crate::ops_vec::join(r1, r2, theta)
        } else {
            ops::join(r1, r2, theta)
        };
        (rel, Vec::new())
    } else {
        par_join_exec(r1, r2, theta, exec, workers)
    };
    span.attr("out_rows", rel.len());
    (rel, stats)
}

/// `r₁ ⋉θ r₂` under the given execution mode and worker count.
pub fn semijoin(
    r1: &Relation,
    r2: &Relation,
    theta: &Condition,
    exec: Execution,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    let mut span = sj_obs::span!(
        "kernel.semijoin",
        left = r1.len(),
        right = r2.len(),
        workers = workers.max(1)
    );
    let (rel, stats) = if workers <= 1 {
        let rel = if exec.is_vectorized() {
            crate::ops_vec::semijoin(r1, r2, theta)
        } else {
            ops::semijoin(r1, r2, theta)
        };
        (rel, Vec::new())
    } else {
        par_semijoin_exec(r1, r2, theta, exec, workers)
    };
    span.attr("out_rows", rel.len());
    (rel, stats)
}

/// Merge equi-join on an aligned key prefix of length `k` (see
/// [`ops::merge_prefix_len`]) under the given execution mode and worker
/// count.
pub fn merge_join(
    r1: &Relation,
    r2: &Relation,
    k: usize,
    residual: &Condition,
    exec: Execution,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    let mut span = sj_obs::span!(
        "kernel.merge_join",
        left = r1.len(),
        right = r2.len(),
        workers = workers.max(1)
    );
    let (rel, stats) = if workers <= 1 {
        let rel = if exec.is_vectorized() {
            crate::ops_vec::merge_join(r1, r2, k, residual)
        } else {
            ops::merge_join(r1, r2, k, residual)
        };
        (rel, Vec::new())
    } else {
        par_merge_join_exec(r1, r2, k, residual, exec, workers)
    };
    span.attr("out_rows", rel.len());
    (rel, stats)
}

/// Merge equi-semijoin on an aligned key prefix of length `k` under the
/// given execution mode and worker count.
pub fn merge_semijoin(
    r1: &Relation,
    r2: &Relation,
    k: usize,
    residual: &Condition,
    exec: Execution,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    let mut span = sj_obs::span!(
        "kernel.merge_semijoin",
        left = r1.len(),
        right = r2.len(),
        workers = workers.max(1)
    );
    let (rel, stats) = if workers <= 1 {
        let rel = if exec.is_vectorized() {
            crate::ops_vec::merge_semijoin(r1, r2, k, residual)
        } else {
            ops::merge_semijoin(r1, r2, k, residual)
        };
        (rel, Vec::new())
    } else {
        par_merge_semijoin_exec(r1, r2, k, residual, exec, workers)
    };
    span.attr("out_rows", rel.len());
    (rel, stats)
}

// ---------------------------------------------------------------------------
// Worst-case-optimal multiway join (generic join on a cycle)
// ---------------------------------------------------------------------------

/// One position of a [`MultiwaySpec`] cycle: at cycle position `p`,
/// child `child`'s column `var_col` (0-based) carries the cycle
/// variable `v_p` and column `next_col` carries `v_{p+1 (mod k)}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiwayLeaf {
    /// Index into the operator's children (each child appears exactly
    /// once in the cycle).
    pub child: usize,
    /// 0-based column bound to this position's variable.
    pub var_col: usize,
    /// 0-based column bound to the next position's variable.
    pub next_col: usize,
}

/// The plan-time description of a [`multiway_join`]: a Hamiltonian
/// cycle over binary children, produced by the planner's join-graph
/// cycle detection (`sj_algebra::JoinGraph::hamiltonian_cycle`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiwaySpec {
    /// The cycle positions in cycle order.
    pub cycle: Vec<MultiwayLeaf>,
}

/// Worst-case-optimal join of `k ≥ 3` binary relations forming one
/// equality cycle `R₀(v₀,v₁) ⋈ R₁(v₁,v₂) ⋈ … ⋈ R_{k−1}(v_{k−1},v₀)` —
/// the generic-join algorithm (Ngo–Porat–Ré) specialized to simple
/// cycles:
///
/// 1. Per cycle position, index the relation as a forward map
///    `v_p → sorted [v_{p+1}]` (its posting lists).
/// 2. Start from the **globally least-frequent variable** — the
///    position whose candidate set (values occurring on both adjacent
///    sides) is smallest; the cycle is rotated so iteration begins
///    there.
/// 3. Bind variables around the cycle through the forward lists; the
///    **last** variable is bound by intersecting two sorted posting
///    lists (the forward list of its predecessor and the backward list
///    of the closing relation), never enumerated blindly.
///
/// Every binding writes one output tuple assembled in the children's
/// original column order, so the output equals the pairwise join chain
/// the planner replaced — no projection needed. Runtime is bounded by
/// the AGM fractional-cover bound `∏ |Rᵢ|^{1/2}` (plus the linear
/// indexing passes), which is exactly the regime where every pairwise
/// order materializes a larger intermediate.
///
/// `workers > 1` splits the start variable's candidate list into
/// contiguous chunks fanned out over scoped threads (one
/// [`PartitionStat`] per chunk, `right_rows = 0` — there is no probe
/// side); the canonicalizing merge keeps the output byte-identical for
/// every worker count. The [`Execution`] knob is accepted for kernel
/// signature uniformity but selects nothing: the posting-list indexes
/// are already column-oriented, so there is no row-at-a-time variant to
/// choose.
pub fn multiway_join(
    children: &[&Relation],
    spec: &MultiwaySpec,
    _exec: Execution,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    let k = spec.cycle.len();
    let mut span = sj_obs::span!(
        "kernel.multiway",
        children = children.len(),
        rows = children.iter().map(|r| r.len()).sum::<usize>(),
        workers = workers.max(1)
    );
    debug_assert!(k >= 3, "a multiway cycle has at least 3 positions");
    debug_assert!(spec.cycle.iter().all(|p| children[p.child].arity() == 2));
    let out_arity: usize = children.iter().map(|r| r.arity()).sum();
    let offsets: Vec<usize> = children
        .iter()
        .scan(0usize, |acc, r| {
            let o = *acc;
            *acc += r.arity();
            Some(o)
        })
        .collect();
    // Forward posting lists per cycle position: v_p → sorted [v_{p+1}].
    let fwd: Vec<FxHashMap<Value, Vec<Value>>> = spec
        .cycle
        .iter()
        .map(|pos| {
            let mut m: FxHashMap<Value, Vec<Value>> = FxHashMap::default();
            for t in children[pos.child].tuples() {
                m.entry(t[pos.var_col].clone())
                    .or_default()
                    .push(t[pos.next_col].clone());
            }
            for list in m.values_mut() {
                list.sort_unstable();
            }
            m
        })
        .collect();
    // Candidate list per position: values that occur as position p's
    // variable AND as position p−1's next value. The start position is
    // the globally least-frequent variable — the smallest such list.
    let nexts: Vec<Vec<Value>> = fwd
        .iter()
        .map(|m| {
            let mut vals: Vec<Value> = m.values().flatten().cloned().collect();
            vals.sort_unstable();
            vals.dedup();
            vals
        })
        .collect();
    let candidates: Vec<Vec<Value>> = (0..k)
        .map(|p| {
            let prev = &nexts[(p + k - 1) % k];
            let mut vals: Vec<Value> = fwd[p]
                .keys()
                .filter(|v| prev.binary_search(v).is_ok())
                .cloned()
                .collect();
            vals.sort_unstable();
            vals
        })
        .collect();
    let start = (0..k)
        .min_by_key(|&p| (candidates[p].len(), p))
        .expect("k >= 3");
    let rot = |i: usize| (start + i) % k;
    let cands = &candidates[start];
    // Backward posting lists of the closing relation (rotated position
    // k−1): v_0 → sorted [v_{k−1}] — the second list of the final
    // intersection.
    let closing = &spec.cycle[rot(k - 1)];
    let mut bwd: FxHashMap<Value, Vec<Value>> = FxHashMap::default();
    for t in children[closing.child].tuples() {
        bwd.entry(t[closing.next_col].clone())
            .or_default()
            .push(t[closing.var_col].clone());
    }
    for list in bwd.values_mut() {
        list.sort_unstable();
    }

    // Emit the output tuple of one complete binding (rotated order).
    let emit = |binding: &[Value], out: &mut Vec<Tuple>| {
        let mut cells = vec![Value::int(0); out_arity];
        for (i, v) in binding.iter().enumerate() {
            let pos = &spec.cycle[rot(i)];
            let base = offsets[pos.child];
            cells[base + pos.var_col] = v.clone();
            cells[base + pos.next_col] = binding[(i + 1) % k].clone();
        }
        out.push(Tuple::new(cells));
    };
    // Depth-first bind v_1..v_{k−1} given v_0 = `binding[0]`; `fwd` is
    // already in rotated cycle order (index = depth of the variable the
    // map extends *from*).
    fn search(
        depth: usize,
        k: usize,
        fwd: &[&FxHashMap<Value, Vec<Value>>],
        bwd: &FxHashMap<Value, Vec<Value>>,
        binding: &mut Vec<Value>,
        emit: &dyn Fn(&[Value], &mut Vec<Tuple>),
        out: &mut Vec<Tuple>,
    ) {
        let Some(reachable) = fwd[depth - 1].get(&binding[depth - 1]) else {
            return;
        };
        if depth == k - 1 {
            // Close the cycle: v_{k−1} must extend v_{k−2} forward AND
            // reach v_0 through the closing relation — a sorted
            // intersection of the two posting lists.
            let Some(back) = bwd.get(&binding[0]) else {
                return;
            };
            let (mut i, mut j) = (0usize, 0usize);
            while i < reachable.len() && j < back.len() {
                match reachable[i].cmp(&back[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        binding.push(reachable[i].clone());
                        emit(binding, out);
                        binding.pop();
                        i += 1;
                        j += 1;
                    }
                }
            }
            return;
        }
        for v in reachable.clone() {
            binding.push(v);
            search(depth + 1, k, fwd, bwd, binding, emit, out);
            binding.pop();
        }
    }
    let rot_fwd: Vec<&FxHashMap<Value, Vec<Value>>> = (0..k).map(|i| &fwd[rot(i)]).collect();
    let run = |chunk: &[u32]| {
        let mut out: Vec<Tuple> = Vec::new();
        let mut binding: Vec<Value> = Vec::with_capacity(k);
        for &ci in chunk {
            binding.clear();
            binding.push(cands[ci as usize].clone());
            search(1, k, &rot_fwd, &bwd, &mut binding, &emit, &mut out);
        }
        out
    };

    if workers <= 1 {
        let all: Vec<u32> = (0..cands.len() as u32).collect();
        let tuples = run(&all);
        let rel = Relation::from_tuples(out_arity, tuples).expect("assembled arity");
        span.attr("out_rows", rel.len());
        return (rel, Vec::new());
    }
    let parent = sj_obs::current_span();
    let outputs = fan_out(
        chunk_indices(cands.len(), workers)
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>(),
        workers,
        |(partition, chunk)| {
            sj_obs::with_parent(parent, || {
                let mut pspan = sj_obs::span!(
                    "kernel.partition",
                    partition = partition,
                    left = chunk.len()
                );
                let start = Instant::now();
                let out = run(&chunk);
                pspan.attr("out_rows", out.len());
                (chunk.len(), out, start.elapsed())
            })
        },
    );
    let mut stats = Vec::with_capacity(outputs.len());
    let mut tuples: Vec<Tuple> = Vec::new();
    for (partition, (left_rows, out, elapsed)) in outputs.into_iter().enumerate() {
        stats.push(PartitionStat {
            partition,
            left_rows,
            right_rows: 0,
            out_rows: out.len(),
            elapsed,
        });
        tuples.extend(out);
    }
    // Chunks partition the start candidates, and a binding determines
    // its tuple, so the concatenation is duplicate-free; one
    // canonicalization pass restores the global order.
    let merged = Relation::from_tuples(out_arity, tuples).expect("partition arities agree");
    span.attr("out_rows", merged.len());
    (merged, stats)
}

// ---------------------------------------------------------------------------
// Partition-parallel machinery
// ---------------------------------------------------------------------------

/// Split `0..len` into at most `n` contiguous index ranges — the
/// partitioning used when θ has no equality atom to hash on.
fn chunk_indices(len: usize, n: usize) -> Vec<Vec<u32>> {
    let n = n.max(1).min(len.max(1));
    let per = len.div_ceil(n).max(1);
    (0..len as u32)
        .collect::<Vec<u32>>()
        .chunks(per)
        .map(|c| c.to_vec())
        .collect()
}

/// Run a binary operator partition-parallel over **index views**:
/// hash-partition both sides on the equality key (`left_cols` /
/// `right_cols`, 0-based) into ascending tuple-index lists
/// ([`Relation::partition_indices`]) so matching keys co-locate, fan
/// the partition pairs out over `workers` scoped threads, and union the
/// per-partition outputs back into canonical order. With no equality
/// columns the left side is chunked into contiguous index ranges and
/// every chunk sees the full right side.
///
/// Partitions are views — index lists into the shared operands — so no
/// input tuple is ever cloned into a partition (the scheme
/// `sj_setjoin::parallel` uses, ported to the planned-query path; only
/// the 4-byte indices and the output tuples are materialized). The
/// per-partition kernel `op` is chosen by the caller — row index-view
/// or vectorized gather-view — which is exactly how `Execution` and
/// `Parallelism` compose.
fn par_binary(
    r1: &Relation,
    r2: &Relation,
    left_cols: &[usize],
    right_cols: &[usize],
    workers: usize,
    out_arity: usize,
    op: impl Fn(&[u32], &[u32]) -> Vec<Tuple> + Sync,
) -> (Relation, Vec<PartitionStat>) {
    let workers = workers.max(1);
    let parent = sj_obs::current_span();
    let timed = |partition: usize, li: &[u32], ri: &[u32]| {
        sj_obs::with_parent(parent, || {
            let mut span = sj_obs::span!(
                "kernel.partition",
                partition = partition,
                left = li.len(),
                right = ri.len()
            );
            let start = Instant::now();
            let out = op(li, ri);
            let elapsed = start.elapsed();
            span.attr("out_rows", out.len());
            (li.len(), ri.len(), out, elapsed)
        })
    };
    let outputs = if left_cols.is_empty() {
        // No key to co-partition on: chunk the left side; every chunk
        // probes the whole right side through one shared index list.
        let full: Vec<u32> = (0..r2.len() as u32).collect();
        let chunks: Vec<(usize, Vec<u32>)> = chunk_indices(r1.len(), workers)
            .into_iter()
            .enumerate()
            .collect();
        fan_out(chunks, workers, |(p, li)| timed(p, &li, &full))
    } else {
        let pairs: Vec<_> = r1
            .partition_indices(left_cols, workers)
            .into_iter()
            .zip(r2.partition_indices(right_cols, workers))
            .enumerate()
            .collect();
        fan_out(pairs, workers, |(p, (li, ri))| timed(p, &li, &ri))
    };
    let mut stats = Vec::with_capacity(outputs.len());
    let mut tuples: Vec<Tuple> = Vec::new();
    for (partition, (left_rows, right_rows, out, elapsed)) in outputs.into_iter().enumerate() {
        stats.push(PartitionStat {
            partition,
            left_rows,
            right_rows,
            out_rows: out.len(),
            elapsed,
        });
        tuples.extend(out);
    }
    // Partitions are key-disjoint (or, for the chunked no-equality path,
    // row-disjoint), so the flattened outputs contain no duplicates; one
    // canonicalization pass restores the global order.
    let merged = Relation::from_tuples(out_arity, tuples).expect("partition arities agree");
    (merged, stats)
}

/// Partition-parallel join with the per-partition kernel chosen by
/// `exec`: vectorized gather-view when there is an equality key,
/// otherwise the row nested-loop index kernel under either mode.
fn par_join_exec(
    r1: &Relation,
    r2: &Relation,
    theta: &Condition,
    exec: Execution,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    let (eq, residual) = split_condition(theta);
    let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
    let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
    let out_arity = r1.arity() + r2.arity();
    let vectorize = exec.is_vectorized() && !eq.is_empty();
    par_binary(
        r1,
        r2,
        &left_cols,
        &right_cols,
        workers,
        out_arity,
        |li, ri| {
            if vectorize {
                join_view(r1, r2, li, ri, &eq, &residual)
            } else {
                join_idx(r1, r2, li, ri, theta)
            }
        },
    )
}

/// Partition-parallel semijoin (see [`par_join_exec`]).
fn par_semijoin_exec(
    r1: &Relation,
    r2: &Relation,
    theta: &Condition,
    exec: Execution,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    let (eq, residual) = split_condition(theta);
    let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
    let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
    let vectorize = exec.is_vectorized() && !eq.is_empty();
    par_binary(
        r1,
        r2,
        &left_cols,
        &right_cols,
        workers,
        r1.arity(),
        |li, ri| {
            if vectorize {
                semijoin_view(r1, r2, li, ri, &eq, &residual)
            } else {
                semijoin_idx(r1, r2, li, ri, theta)
            }
        },
    )
}

/// Partition-parallel merge join on an aligned key prefix: both sides
/// are hash-partitioned on the prefix columns (partitions stay
/// canonically sorted — they are subsequences), merged per partition
/// with the `exec`-selected kernel, and unioned back.
fn par_merge_join_exec(
    r1: &Relation,
    r2: &Relation,
    k: usize,
    residual: &Condition,
    exec: Execution,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    let cols: Vec<usize> = (0..k).collect();
    let out_arity = r1.arity() + r2.arity();
    let vectorize = exec.is_vectorized();
    par_binary(r1, r2, &cols, &cols, workers, out_arity, |li, ri| {
        if vectorize {
            merge_join_view(r1, r2, li, ri, k, residual)
        } else {
            merge_join_idx(r1, r2, li, ri, k, residual)
        }
    })
}

/// Partition-parallel merge semijoin on an aligned key prefix.
fn par_merge_semijoin_exec(
    r1: &Relation,
    r2: &Relation,
    k: usize,
    residual: &Condition,
    exec: Execution,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    let cols: Vec<usize> = (0..k).collect();
    let vectorize = exec.is_vectorized();
    par_binary(r1, r2, &cols, &cols, workers, r1.arity(), |li, ri| {
        if vectorize {
            merge_semijoin_view(r1, r2, li, ri, k, residual)
        } else {
            merge_semijoin_idx(r1, r2, li, ri, k, residual)
        }
    })
}

// ---------------------------------------------------------------------------
// Row-execution compatibility wrappers
// ---------------------------------------------------------------------------

/// Partition-parallel [`ops::join`] with row per-partition kernels:
/// byte-identical output for every worker count (partition placement is
/// deterministic and the merge restores canonical order).
pub fn par_join(r1: &Relation, r2: &Relation, theta: &Condition, workers: usize) -> Relation {
    par_join_stats(r1, r2, theta, workers).0
}

/// [`par_join`] plus per-partition statistics for instrumentation.
pub fn par_join_stats(
    r1: &Relation,
    r2: &Relation,
    theta: &Condition,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    par_join_exec(r1, r2, theta, Execution::RowAtATime, workers)
}

/// Partition-parallel [`ops::semijoin`] with row per-partition kernels.
pub fn par_semijoin(r1: &Relation, r2: &Relation, theta: &Condition, workers: usize) -> Relation {
    par_semijoin_stats(r1, r2, theta, workers).0
}

/// [`par_semijoin`] plus per-partition statistics.
pub fn par_semijoin_stats(
    r1: &Relation,
    r2: &Relation,
    theta: &Condition,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    par_semijoin_exec(r1, r2, theta, Execution::RowAtATime, workers)
}

/// Partition-parallel [`ops::merge_join`] with row per-partition kernels.
pub fn par_merge_join_stats(
    r1: &Relation,
    r2: &Relation,
    k: usize,
    residual: &Condition,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    par_merge_join_exec(r1, r2, k, residual, Execution::RowAtATime, workers)
}

/// Partition-parallel [`ops::merge_semijoin`] with row per-partition
/// kernels.
pub fn par_merge_semijoin_stats(
    r1: &Relation,
    r2: &Relation,
    k: usize,
    residual: &Condition,
    workers: usize,
) -> (Relation, Vec<PartitionStat>) {
    par_merge_semijoin_exec(r1, r2, k, residual, Execution::RowAtATime, workers)
}

// ---------------------------------------------------------------------------
// Row index-view kernels
// ---------------------------------------------------------------------------

/// [`ops::join`] restricted to the tuples of `r1` at `li` and of `r2` at
/// `ri` (ascending index views): hash build over the right view, probe
/// from the left view, residual filter on candidates.
fn join_idx(r1: &Relation, r2: &Relation, li: &[u32], ri: &[u32], theta: &Condition) -> Vec<Tuple> {
    let (eq, residual) = split_condition(theta);
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    if eq.is_empty() {
        for &i in li {
            let t1 = &a[i as usize];
            for &j in ri {
                let t2 = &b[j as usize];
                if theta.eval(t1.values(), t2.values()) {
                    out.push(t1.concat(t2));
                }
            }
        }
    } else {
        let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
        let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
        let mut index: FxHashMap<Vec<Value>, Vec<u32>> = FxHashMap::default();
        for &j in ri {
            let t2 = &b[j as usize];
            let key: Vec<Value> = right_cols.iter().map(|&c| t2[c].clone()).collect();
            index.entry(key).or_default().push(j);
        }
        let mut key: Vec<Value> = Vec::with_capacity(left_cols.len());
        for &i in li {
            let t1 = &a[i as usize];
            key.clear();
            key.extend(left_cols.iter().map(|&c| t1[c].clone()));
            if let Some(hits) = index.get(key.as_slice()) {
                for &j in hits {
                    let t2 = &b[j as usize];
                    if residual.eval(t1.values(), t2.values()) {
                        out.push(t1.concat(t2));
                    }
                }
            }
        }
    }
    out
}

/// [`ops::semijoin`] over index views (see [`join_idx`]).
fn semijoin_idx(
    r1: &Relation,
    r2: &Relation,
    li: &[u32],
    ri: &[u32],
    theta: &Condition,
) -> Vec<Tuple> {
    let (eq, residual) = split_condition(theta);
    let (a, b) = (r1.tuples(), r2.tuples());
    let tuple_at = |i: &u32| a[*i as usize].clone();
    if eq.is_empty() {
        if ri.is_empty() {
            Vec::new()
        } else if theta.is_empty() {
            li.iter().map(tuple_at).collect()
        } else {
            li.iter()
                .filter(|&&i| {
                    let t1 = &a[i as usize];
                    ri.iter()
                        .any(|&j| theta.eval(t1.values(), b[j as usize].values()))
                })
                .map(tuple_at)
                .collect()
        }
    } else {
        let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
        let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
        let mut index: FxHashMap<Vec<Value>, Vec<u32>> = FxHashMap::default();
        for &j in ri {
            let t2 = &b[j as usize];
            let key: Vec<Value> = right_cols.iter().map(|&c| t2[c].clone()).collect();
            index.entry(key).or_default().push(j);
        }
        let mut key: Vec<Value> = Vec::with_capacity(left_cols.len());
        li.iter()
            .filter(|&&i| {
                let t1 = &a[i as usize];
                key.clear();
                key.extend(left_cols.iter().map(|&c| t1[c].clone()));
                index.get(key.as_slice()).is_some_and(|hits| {
                    residual.is_empty()
                        || hits
                            .iter()
                            .any(|&j| residual.eval(t1.values(), b[j as usize].values()))
                })
            })
            .map(tuple_at)
            .collect()
    }
}

/// Compare the first `k` components of two tuples.
#[inline]
fn cmp_prefix(a: &Tuple, b: &Tuple, k: usize) -> std::cmp::Ordering {
    a.values()[..k].cmp(&b.values()[..k])
}

/// End of the run of indices whose tuples share the first `k`
/// components with the tuple at `idx[start]`.
#[inline]
fn run_end_idx(ts: &[Tuple], idx: &[u32], start: usize, k: usize) -> usize {
    let mut end = start + 1;
    while end < idx.len()
        && cmp_prefix(&ts[idx[end] as usize], &ts[idx[start] as usize], k)
            == std::cmp::Ordering::Equal
    {
        end += 1;
    }
    end
}

/// [`ops::merge_join`] over index views: the index lists are ascending,
/// so their tuples are already in canonical (key-sorted) order.
fn merge_join_idx(
    r1: &Relation,
    r2: &Relation,
    li: &[u32],
    ri: &[u32],
    k: usize,
    residual: &Condition,
) -> Vec<Tuple> {
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < li.len() && j < ri.len() {
        match cmp_prefix(&a[li[i] as usize], &b[ri[j] as usize], k) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (i_end, j_end) = (run_end_idx(a, li, i, k), run_end_idx(b, ri, j, k));
                for &ii in &li[i..i_end] {
                    let t1 = &a[ii as usize];
                    for &jj in &ri[j..j_end] {
                        let t2 = &b[jj as usize];
                        if residual.eval(t1.values(), t2.values()) {
                            out.push(t1.concat(t2));
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// [`ops::merge_semijoin`] over index views (see [`merge_join_idx`]).
fn merge_semijoin_idx(
    r1: &Relation,
    r2: &Relation,
    li: &[u32],
    ri: &[u32],
    k: usize,
    residual: &Condition,
) -> Vec<Tuple> {
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < li.len() && j < ri.len() {
        match cmp_prefix(&a[li[i] as usize], &b[ri[j] as usize], k) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (i_end, j_end) = (run_end_idx(a, li, i, k), run_end_idx(b, ri, j, k));
                for &ii in &li[i..i_end] {
                    let t1 = &a[ii as usize];
                    if residual.is_empty()
                        || ri[j..j_end]
                            .iter()
                            .any(|&jj| residual.eval(t1.values(), b[jj as usize].values()))
                    {
                        out.push(t1.clone());
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Vectorized gather-view kernels
// ---------------------------------------------------------------------------

/// Exact key equality between view row `li` of `lv` and view row `ri`
/// of `rv` — the collision check behind every hash pairing.
#[inline]
fn keys_eq_view(
    lv: &ColsView<'_>,
    li: usize,
    rv: &ColsView<'_>,
    ri: usize,
    eq: &[(usize, usize)],
) -> bool {
    eq.iter().all(|&(lc, rc)| lv.cell_eq(lc, li, rv, rc, ri))
}

/// Vectorized hash join over one partition pair: build the hash table
/// from the right gather view, probe from the left gather view, both
/// hashed column-at-a-time through [`sj_storage::ColGather`].
fn join_view(
    r1: &Relation,
    r2: &Relation,
    li: &[u32],
    ri: &[u32],
    eq: &[(usize, usize)],
    residual: &Condition,
) -> Vec<Tuple> {
    let (lv, rv) = (r1.columns().view(li), r2.columns().view(ri));
    let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
    let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
    let mut scratch: Vec<u64> = Vec::new();
    hash_view_rows(&rv, &right_cols, &mut scratch);
    let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    table.reserve(rv.len());
    for (k, &h) in scratch.iter().enumerate() {
        table.entry(h).or_default().push(k as u32);
    }
    hash_view_rows(&lv, &left_cols, &mut scratch);
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    for (k, &h) in scratch.iter().enumerate() {
        let Some(cands) = table.get(&h) else { continue };
        let t1 = &a[lv.row(k)];
        for &vk in cands {
            let vk = vk as usize;
            if keys_eq_view(&lv, k, &rv, vk, eq) {
                let t2 = &b[rv.row(vk)];
                if residual.eval(t1.values(), t2.values()) {
                    out.push(t1.concat(t2));
                }
            }
        }
    }
    out
}

/// Vectorized hash semijoin over one partition pair (see [`join_view`]).
fn semijoin_view(
    r1: &Relation,
    r2: &Relation,
    li: &[u32],
    ri: &[u32],
    eq: &[(usize, usize)],
    residual: &Condition,
) -> Vec<Tuple> {
    let (lv, rv) = (r1.columns().view(li), r2.columns().view(ri));
    let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
    let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
    let mut scratch: Vec<u64> = Vec::new();
    hash_view_rows(&rv, &right_cols, &mut scratch);
    let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    table.reserve(rv.len());
    for (k, &h) in scratch.iter().enumerate() {
        table.entry(h).or_default().push(k as u32);
    }
    hash_view_rows(&lv, &left_cols, &mut scratch);
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    for (k, &h) in scratch.iter().enumerate() {
        let Some(cands) = table.get(&h) else { continue };
        let t1 = &a[lv.row(k)];
        let survives = cands.iter().any(|&vk| {
            let vk = vk as usize;
            keys_eq_view(&lv, k, &rv, vk, eq)
                && (residual.is_empty() || residual.eval(t1.values(), b[rv.row(vk)].values()))
        });
        if survives {
            out.push(t1.clone());
        }
    }
    out
}

/// Compare the first `k` columns of view row `i` of `lv` and view row
/// `j` of `rv` through the typed cell comparator.
#[inline]
fn cmp_prefix_view(
    lv: &ColsView<'_>,
    i: usize,
    rv: &ColsView<'_>,
    j: usize,
    k: usize,
) -> std::cmp::Ordering {
    for c in 0..k {
        match lv.cell_cmp(c, i, rv, c, j) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// End of the run of view rows sharing row `start`'s first `k` column
/// values.
#[inline]
fn run_end_view(v: &ColsView<'_>, start: usize, k: usize) -> usize {
    let mut end = start + 1;
    while end < v.len() && cmp_prefix_view(v, end, v, start, k) == std::cmp::Ordering::Equal {
        end += 1;
    }
    end
}

/// Vectorized merge join over one partition pair: run detection and
/// prefix comparison through [`ColsView::cell_cmp`] (typed column
/// compares); a non-matching side skips its whole run at once.
fn merge_join_view(
    r1: &Relation,
    r2: &Relation,
    li: &[u32],
    ri: &[u32],
    k: usize,
    residual: &Condition,
) -> Vec<Tuple> {
    let (lv, rv) = (r1.columns().view(li), r2.columns().view(ri));
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lv.len() && j < rv.len() {
        match cmp_prefix_view(&lv, i, &rv, j, k) {
            std::cmp::Ordering::Less => i = run_end_view(&lv, i, k),
            std::cmp::Ordering::Greater => j = run_end_view(&rv, j, k),
            std::cmp::Ordering::Equal => {
                let (i_end, j_end) = (run_end_view(&lv, i, k), run_end_view(&rv, j, k));
                for ii in i..i_end {
                    let t1 = &a[lv.row(ii)];
                    for jj in j..j_end {
                        let t2 = &b[rv.row(jj)];
                        if residual.eval(t1.values(), t2.values()) {
                            out.push(t1.concat(t2));
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Vectorized merge semijoin over one partition pair (see
/// [`merge_join_view`]).
fn merge_semijoin_view(
    r1: &Relation,
    r2: &Relation,
    li: &[u32],
    ri: &[u32],
    k: usize,
    residual: &Condition,
) -> Vec<Tuple> {
    let (lv, rv) = (r1.columns().view(li), r2.columns().view(ri));
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lv.len() && j < rv.len() {
        match cmp_prefix_view(&lv, i, &rv, j, k) {
            std::cmp::Ordering::Less => i = run_end_view(&lv, i, k),
            std::cmp::Ordering::Greater => j = run_end_view(&rv, j, k),
            std::cmp::Ordering::Equal => {
                let (i_end, j_end) = (run_end_view(&lv, i, k), run_end_view(&rv, j, k));
                for ii in i..i_end {
                    let t1 = &a[lv.row(ii)];
                    if residual.is_empty()
                        || (j..j_end).any(|jj| residual.eval(t1.values(), b[rv.row(jj)].values()))
                    {
                        out.push(t1.clone());
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_algebra::CompOp;
    use sj_storage::tuple;

    fn r(rows: &[&[i64]]) -> Relation {
        Relation::from_int_rows(rows)
    }

    fn operands() -> Vec<(&'static str, Relation, Relation)> {
        let lrows: Vec<Vec<i64>> = (0..300).map(|i| vec![i % 23, i]).collect();
        let lrefs: Vec<&[i64]> = lrows.iter().map(|r| r.as_slice()).collect();
        let rrows: Vec<Vec<i64>> = (0..200).map(|i| vec![i % 23, i % 17]).collect();
        let rrefs: Vec<&[i64]> = rrows.iter().map(|r| r.as_slice()).collect();
        vec![
            ("ints", r(&lrefs), r(&rrefs)),
            (
                "strings",
                Relation::from_str_rows(&[
                    &["an", "headache"],
                    &["an", "sore throat"],
                    &["bob", "headache"],
                    &["bob", "memory loss"],
                ]),
                Relation::from_str_rows(&[&["an", "headache"], &["flu", "sore throat"]]),
            ),
            (
                "mixed-variants",
                Relation::from_tuples(
                    2,
                    vec![tuple![1, "x"], tuple![1, 7], tuple![2, "y"], tuple![3, 7]],
                )
                .unwrap(),
                Relation::from_tuples(2, vec![tuple![1, 7], tuple![2, "x"], tuple![9, "y"]])
                    .unwrap(),
            ),
            ("empty-left", Relation::empty(2), r(&rrefs)),
            ("empty-right", r(&lrefs), Relation::empty(2)),
        ]
    }

    /// Both execution modes at every worker count are byte-identical to
    /// the serial row reference, for joins and semijoins on every theta
    /// shape and operand type.
    #[test]
    fn kernel_join_and_semijoin_match_serial_reference() {
        let thetas = [
            Condition::eq(1, 1),
            Condition::eq(2, 1),
            Condition::eq(1, 1).and(2, CompOp::Lt, 2),
            Condition::lt(1, 1),
            Condition::always(),
        ];
        for (name, a, b) in operands() {
            for theta in &thetas {
                let want_join = ops::join(&a, &b, theta);
                let want_semi = ops::semijoin(&a, &b, theta);
                for exec in [Execution::RowAtATime, Execution::Vectorized] {
                    for workers in [1usize, 2, 4, 8] {
                        let (j, jstats) = join(&a, &b, theta, exec, workers);
                        assert_eq!(j, want_join, "join {theta} on {name} {exec:?} @{workers}");
                        let (s, _) = semijoin(&a, &b, theta, exec, workers);
                        assert_eq!(
                            s, want_semi,
                            "semijoin {theta} on {name} {exec:?} @{workers}"
                        );
                        if workers <= 1 {
                            assert!(jstats.is_empty(), "serial runs report no partitions");
                        } else {
                            // The chunked no-equality path over an empty
                            // left side has nothing to partition; every
                            // other parallel run reports partitions.
                            let chunked_empty = split_condition(theta).0.is_empty() && a.is_empty();
                            assert!(!jstats.is_empty() || chunked_empty);
                            assert_eq!(
                                jstats.iter().map(|p| p.out_rows).sum::<usize>(),
                                j.len(),
                                "partition stats account for every output tuple"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Merge variants: both execution modes at every worker count equal
    /// the serial row merge.
    #[test]
    fn kernel_merge_variants_match_serial_reference() {
        let residuals = [
            Condition::always(),
            Condition::new([sj_algebra::Atom {
                left: 2,
                op: CompOp::Neq,
                right: 2,
            }]),
        ];
        for (name, a, b) in operands() {
            for residual in &residuals {
                let want_join = ops::merge_join(&a, &b, 1, residual);
                let want_semi = ops::merge_semijoin(&a, &b, 1, residual);
                for exec in [Execution::RowAtATime, Execution::Vectorized] {
                    for workers in [1usize, 3, 4, 8] {
                        let (j, _) = merge_join(&a, &b, 1, residual, exec, workers);
                        assert_eq!(j, want_join, "merge join on {name} {exec:?} @{workers}");
                        let (s, _) = merge_semijoin(&a, &b, 1, residual, exec, workers);
                        assert_eq!(s, want_semi, "merge semijoin on {name} {exec:?} @{workers}");
                    }
                }
            }
        }
    }

    /// The vectorized gather-view kernels are exercised directly (not
    /// through the no-equality fallback): a single partition covering
    /// everything must reproduce the serial operators.
    #[test]
    fn view_kernels_match_serial_on_full_views() {
        for (name, a, b) in operands() {
            let li: Vec<u32> = (0..a.len() as u32).collect();
            let ri: Vec<u32> = (0..b.len() as u32).collect();
            let theta = Condition::eq(1, 1).and(2, CompOp::Neq, 2);
            let (eq, residual) = split_condition(&theta);
            let got = Relation::from_tuples(
                a.arity() + b.arity(),
                join_view(&a, &b, &li, &ri, &eq, &residual),
            )
            .unwrap();
            assert_eq!(got, ops::join(&a, &b, &theta), "join_view on {name}");
            let semi =
                Relation::from_tuples(a.arity(), semijoin_view(&a, &b, &li, &ri, &eq, &residual))
                    .unwrap();
            assert_eq!(
                semi,
                ops::semijoin(&a, &b, &theta),
                "semijoin_view on {name}"
            );
            let mj = Relation::from_tuples(
                a.arity() + b.arity(),
                merge_join_view(&a, &b, &li, &ri, 1, &Condition::always()),
            )
            .unwrap();
            assert_eq!(
                mj,
                ops::merge_join(&a, &b, 1, &Condition::always()),
                "merge_join_view on {name}"
            );
            let ms = Relation::from_tuples(
                a.arity(),
                merge_semijoin_view(&a, &b, &li, &ri, 1, &Condition::always()),
            )
            .unwrap();
            assert_eq!(
                ms,
                ops::merge_semijoin(&a, &b, 1, &Condition::always()),
                "merge_semijoin_view on {name}"
            );
        }
    }

    /// A small directed graph with a hub, a matching, and some chain
    /// edges — enough structure for non-trivial triangles and 4-cycles.
    fn edge_relation() -> Relation {
        let mut rows: Vec<Vec<i64>> = Vec::new();
        for i in 0..8 {
            rows.push(vec![0, i]); // hub out-edges
            rows.push(vec![i, 0]); // hub in-edges
            rows.push(vec![i, (i + 1) % 8]); // ring
        }
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        r(&refs)
    }

    /// The standard cycle spec over `k` binary children in chain
    /// orientation: child p holds (v_p, v_{p+1 mod k}).
    fn cycle_spec(k: usize) -> MultiwaySpec {
        MultiwaySpec {
            cycle: (0..k)
                .map(|p| MultiwayLeaf {
                    child: p,
                    var_col: 0,
                    next_col: 1,
                })
                .collect(),
        }
    }

    /// The multiway kernel equals the pairwise join chain on triangles
    /// and 4-cycles, byte-identical at every worker count, with
    /// partition stats accounting for every output tuple.
    #[test]
    fn multiway_join_matches_pairwise_chain() {
        let e = edge_relation();

        // Triangle reference: (E ⋈₂₌₁ E) ⋈_{4=1 ∧ 1=2} E.
        let tri_ref = ops::join(
            &ops::join(&e, &e, &Condition::eq(2, 1)),
            &e,
            &Condition::eq_pairs([(4, 1), (1, 2)]),
        );
        assert!(!tri_ref.is_empty(), "the graph has triangles");
        // 4-cycle reference: ((E ⋈₂₌₁ E) ⋈₄₌₁ E) ⋈_{6=1 ∧ 1=2} E.
        let quad_ref = ops::join(
            &ops::join(
                &ops::join(&e, &e, &Condition::eq(2, 1)),
                &e,
                &Condition::eq(4, 1),
            ),
            &e,
            &Condition::eq_pairs([(6, 1), (1, 2)]),
        );
        assert!(!quad_ref.is_empty(), "the graph has 4-cycles");

        for (k, want) in [(3usize, &tri_ref), (4, &quad_ref)] {
            let children: Vec<&Relation> = vec![&e; k];
            let spec = cycle_spec(k);
            for exec in [Execution::RowAtATime, Execution::Vectorized] {
                for workers in [1usize, 2, 4, 8] {
                    let (got, stats) = multiway_join(&children, &spec, exec, workers);
                    assert_eq!(got, *want, "k={k} {exec:?} @{workers}");
                    if workers <= 1 {
                        assert!(stats.is_empty(), "serial runs report no partitions");
                    } else {
                        assert_eq!(
                            stats.iter().map(|p| p.out_rows).sum::<usize>(),
                            got.len(),
                            "partition stats account for every output tuple"
                        );
                    }
                }
            }
        }
    }

    /// Degenerate multiway inputs: an empty child annihilates the
    /// output, and a relation with no closing edges produces nothing.
    #[test]
    fn multiway_join_empty_and_closed_cases() {
        let e = edge_relation();
        let empty = Relation::empty(2);
        let spec = cycle_spec(3);
        for workers in [1usize, 4] {
            let (got, _) = multiway_join(&[&e, &empty, &e], &spec, Execution::RowAtATime, workers);
            assert!(got.is_empty(), "empty child @{workers}");
            assert_eq!(got.arity(), 6);
        }
        // An acyclic edge set (a DAG chain 0→1→2→…) has no triangles.
        let chain_rows: Vec<Vec<i64>> = (0..10).map(|i| vec![i, i + 1]).collect();
        let chain_refs: Vec<&[i64]> = chain_rows.iter().map(|r| r.as_slice()).collect();
        let dag = r(&chain_refs);
        let (got, _) = multiway_join(&[&dag, &dag, &dag], &spec, Execution::Vectorized, 2);
        assert!(got.is_empty(), "a DAG has no directed triangles");
    }
}
