//! ASCII table rendering for relations and databases.
//!
//! The `experiments` binary reproduces the paper's figures as text; this
//! module renders relations in the same style the paper prints them: a
//! header with the relation name and column names, then one row per tuple.

use crate::database::Database;
use crate::relation::Relation;

/// Render a relation as an ASCII table.
///
/// `title` is printed above the table; `columns` supplies header names (when
/// its length does not match the arity, generic names `#1..#n` are used).
///
/// ```
/// use sj_storage::{display::render_relation, Relation};
/// let r = Relation::from_str_rows(&[&["An", "headache"]]);
/// let s = render_relation(&r, "Person", &["pName", "Symptom"]);
/// assert!(s.contains("pName"));
/// assert!(s.contains("An"));
/// ```
pub fn render_relation(rel: &Relation, title: &str, columns: &[&str]) -> String {
    let arity = rel.arity();
    let headers: Vec<String> = if columns.len() == arity {
        columns.iter().map(|s| s.to_string()).collect()
    } else {
        (1..=arity).map(|i| format!("#{i}")).collect()
    };

    // Column widths: max of header and all cells.
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    let rows: Vec<Vec<String>> = rel
        .iter()
        .map(|t| t.iter().map(|v| v.render().into_owned()).collect())
        .collect();
    for row in &rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let rule: String = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    if arity == 0 {
        out.push_str(if rel.is_empty() { "  {}\n" } else { "  {()}\n" });
        return out;
    }
    out.push_str(&rule);
    out.push('\n');
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    out.push_str(&rule);
    out.push('\n');
    for row in &rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

/// Render every relation of a database, in name order.
pub fn render_database(db: &Database, title: &str) -> String {
    let mut out = format!("=== {title} (|D| = {}) ===\n", db.size());
    for (name, rel) in db.iter() {
        out.push_str(&render_relation(rel, name, &[]));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn renders_fig1_person_fragment() {
        let person = Relation::from_str_rows(&[&["An", "headache"], &["An", "sore throat"]]);
        let s = render_relation(&person, "Person", &["pName", "Symptom"]);
        assert!(s.starts_with("Person\n"));
        assert!(s.contains("| pName | Symptom     |"));
        assert!(s.contains("| An    | headache    |"));
        assert!(s.contains("| An    | sore throat |"));
    }

    #[test]
    fn generic_headers_when_columns_missing() {
        let r = Relation::from_int_rows(&[&[1, 2]]);
        let s = render_relation(&r, "R", &[]);
        assert!(s.contains("#1"));
        assert!(s.contains("#2"));
    }

    #[test]
    fn nullary_rendering() {
        let t = Relation::from_tuples(0, vec![Tuple::empty()]).unwrap();
        assert!(render_relation(&t, "True", &[]).contains("{()}"));
        let f = Relation::empty(0);
        assert!(render_relation(&f, "False", &[]).contains("{}"));
    }

    #[test]
    fn database_rendering_includes_size() {
        let mut d = Database::new();
        d.set("R", Relation::from_int_rows(&[&[1], &[2]]));
        let s = render_database(&d, "D");
        assert!(s.contains("|D| = 2"));
        assert!(s.contains("R\n"));
    }
}
