//! Vectorized (chunked columnar) physical operators.
//!
//! Batched counterparts of the hot operators in [`crate::ops`], working
//! on a relation's [`Columns`] view instead of its tuples:
//!
//! * [`select`] scans each column chunk ([`sj_storage::Chunk`], default
//!   [`DEFAULT_CHUNK_ROWS`] rows) with a dense typed loop, collecting a
//!   **selection vector** of surviving row indices, and only then
//!   gathers the surviving tuples — the output is a subsequence of the
//!   canonical order, so no re-sort is needed.
//! * [`join`] / [`semijoin`] build their hash keys from column slices:
//!   per-row key hashes are computed column-at-a-time into a scratch
//!   vector (an integer column hashes as a dense `&[i64]` loop, a
//!   dictionary-encoded string column as a per-code table lookup — no
//!   `Value` is cloned or boxed on either side of the hash table).
//!   Hash-paired rows are confirmed with exact cell comparisons
//!   ([`Columns::cell_eq`]), so hash collisions cannot leak wrong rows.
//! * [`merge_join`] / [`merge_semijoin`] walk the two sorted inputs by
//!   **column runs**: key-prefix comparisons and run detection go
//!   through [`Columns::cell_cmp`] (an `i64` or dictionary-code compare
//!   on typed columns), and a non-matching side skips its whole run at
//!   once instead of one tuple at a time.
//!
//! Every function is output-equivalent to its row counterpart — the
//! differential suites (`tests/vectorized.rs`) hold them byte-identical
//! across strategies, optimize levels, worker counts, and chunk sizes.
//! Shapes the columnar kernels do not cover (conditions with no equality
//! atom, relations beyond the `u32` row-index capacity) fall back to the
//! row implementation rather than approximating it.
//!
//! The chunk size is [`DEFAULT_CHUNK_ROWS`] unless the
//! `SETJOINS_TEST_CHUNK` environment variable overrides it (mirroring
//! `SETJOINS_TEST_THREADS`; CI runs the differential suites at chunk
//! sizes 1 and 3 to stress chunk-boundary arithmetic). The `*_chunked`
//! variants take the chunk size explicitly for tests.

use crate::ops::{self, split_condition};
use sj_algebra::{Condition, Selection};
use sj_storage::column::{hash_int_cell, hash_value_cell};
use sj_storage::{
    Chunk, ColGather, ColSlice, ColsView, Columns, FxHashMap, Relation, Tuple, Value,
    DEFAULT_CHUNK_ROWS,
};
use std::sync::OnceLock;

/// The chunk size in effect for this process: `SETJOINS_TEST_CHUNK` when
/// set to a positive integer, [`DEFAULT_CHUNK_ROWS`] otherwise. Read
/// once and cached.
pub fn effective_chunk_rows() -> usize {
    static CHUNK: OnceLock<usize> = OnceLock::new();
    *CHUNK.get_or_init(|| {
        std::env::var("SETJOINS_TEST_CHUNK")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CHUNK_ROWS)
    })
}

/// Gather the tuples at ascending row indices `keep` — a subsequence of
/// the canonical order, so the fast `from_sorted_tuples` path applies.
fn gather(r: &Relation, keep: &[u32]) -> Relation {
    debug_assert!(keep.windows(2).all(|w| w[0] < w[1]));
    Relation::from_sorted_tuples(
        r.arity(),
        keep.iter()
            .map(|&i| r.tuples()[i as usize].clone())
            .collect(),
    )
}

/// Seed of every composite row-key hash ([`hash_rows`] /
/// [`hash_view_rows`]).
const KEY_HASH_SEED: u64 = 0x5157_cc1b_7272_20a9;

/// Mix one column's cell hash into a row's running key hash.
#[inline]
fn mix(h: u64, x: u64) -> u64 {
    (h.rotate_left(23) ^ x).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

/// Compute the composite key hash of every row in `chunk` over the
/// 0-based key `cols`, column at a time, into the scratch vector `out`.
fn hash_rows(chunk: Chunk<'_>, cols: &[usize], out: &mut Vec<u64>) {
    out.clear();
    out.resize(chunk.len(), KEY_HASH_SEED);
    for &c in cols {
        match chunk.col(c) {
            ColSlice::Int(v) => {
                for (h, &x) in out.iter_mut().zip(v) {
                    *h = mix(*h, hash_int_cell(x));
                }
            }
            ColSlice::Str { codes, dict } => {
                for (h, &cd) in out.iter_mut().zip(codes) {
                    *h = mix(*h, dict.hash_of(cd));
                }
            }
            ColSlice::Mixed(v) => {
                for (h, x) in out.iter_mut().zip(v) {
                    *h = mix(*h, hash_value_cell(x));
                }
            }
        }
    }
}

/// [`hash_rows`] over a gather view: the composite key hash of every
/// view row over the 0-based key `cols`, column at a time, into the
/// scratch vector `out`. Same seed and mixer as the chunked variant —
/// the partition kernels in [`crate::kernel`] hash with exactly the
/// per-cell hashes the serial vectorized operators use.
pub(crate) fn hash_view_rows(view: &ColsView<'_>, cols: &[usize], out: &mut Vec<u64>) {
    out.clear();
    out.resize(view.len(), KEY_HASH_SEED);
    for &c in cols {
        match view.col(c) {
            ColGather::Int { vals, idx } => {
                for (h, &i) in out.iter_mut().zip(idx) {
                    *h = mix(*h, hash_int_cell(vals[i as usize]));
                }
            }
            ColGather::Str { codes, idx, dict } => {
                for (h, &i) in out.iter_mut().zip(idx) {
                    *h = mix(*h, dict.hash_of(codes[i as usize]));
                }
            }
            ColGather::Mixed { vals, idx } => {
                for (h, &i) in out.iter_mut().zip(idx) {
                    *h = mix(*h, hash_value_cell(&vals[i as usize]));
                }
            }
        }
    }
}

/// Exact key equality between row `li` of `c1` and row `ri` of `c2` —
/// the collision check behind every hash pairing.
#[inline]
fn keys_eq(c1: &Columns, li: usize, c2: &Columns, ri: usize, eq: &[(usize, usize)]) -> bool {
    eq.iter().all(|&(lc, rc)| c1.cell_eq(lc, li, c2, rc, ri))
}

/// True when the relation fits the `u32` row indices the chunked kernels
/// use internally; beyond that the row operators take over.
#[inline]
fn indexable(r: &Relation) -> bool {
    sj_storage::ensure_u32_indexable(r.len()).is_ok()
}

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

/// Vectorized `σ(r)` — chunked selection with selection vectors.
/// Output-equivalent to [`ops::select`].
pub fn select(r: &Relation, sel: &Selection) -> Relation {
    select_chunked(r, sel, effective_chunk_rows())
}

/// [`select`] with an explicit chunk size.
pub fn select_chunked(r: &Relation, sel: &Selection, chunk_rows: usize) -> Relation {
    if !indexable(r) {
        return ops::select(r, sel);
    }
    let cols = r.columns();
    let mut keep: Vec<u32> = Vec::new();
    for chunk in cols.chunks(chunk_rows) {
        match sel {
            Selection::Eq(i, j) => sel_eq(cols, chunk, *i - 1, *j - 1, &mut keep),
            Selection::Lt(i, j) => sel_lt(cols, chunk, *i - 1, *j - 1, &mut keep),
            Selection::EqConst(i, c) => sel_eq_const(chunk, *i - 1, c, &mut keep),
        }
    }
    gather(r, &keep)
}

/// Selection vector for `σ_{i=j}` over one chunk.
fn sel_eq(cols: &Columns, chunk: Chunk<'_>, i: usize, j: usize, keep: &mut Vec<u32>) {
    let base = chunk.start() as u32;
    match (chunk.col(i), chunk.col(j)) {
        (ColSlice::Int(a), ColSlice::Int(b)) => {
            for (k, (&x, &y)) in a.iter().zip(b).enumerate() {
                if x == y {
                    keep.push(base + k as u32);
                }
            }
        }
        // Same relation ⇒ same dictionary: code equality is string equality.
        (ColSlice::Str { codes: a, .. }, ColSlice::Str { codes: b, .. }) => {
            for (k, (&x, &y)) in a.iter().zip(b).enumerate() {
                if x == y {
                    keep.push(base + k as u32);
                }
            }
        }
        // An all-integer column never equals an all-string column.
        (ColSlice::Int(_), ColSlice::Str { .. }) | (ColSlice::Str { .. }, ColSlice::Int(_)) => {}
        _ => {
            for k in 0..chunk.len() {
                let row = chunk.start() + k;
                if cols.cell_eq(i, row, cols, j, row) {
                    keep.push(base + k as u32);
                }
            }
        }
    }
}

/// Selection vector for `σ_{i<j}` over one chunk.
fn sel_lt(cols: &Columns, chunk: Chunk<'_>, i: usize, j: usize, keep: &mut Vec<u32>) {
    let base = chunk.start() as u32;
    match (chunk.col(i), chunk.col(j)) {
        (ColSlice::Int(a), ColSlice::Int(b)) => {
            for (k, (&x, &y)) in a.iter().zip(b).enumerate() {
                if x < y {
                    keep.push(base + k as u32);
                }
            }
        }
        // Same dictionary: code order is string order.
        (ColSlice::Str { codes: a, .. }, ColSlice::Str { codes: b, .. }) => {
            for (k, (&x, &y)) in a.iter().zip(b).enumerate() {
                if x < y {
                    keep.push(base + k as u32);
                }
            }
        }
        // Every integer sorts before every string, and never after.
        (ColSlice::Int(_), ColSlice::Str { .. }) => {
            keep.extend((0..chunk.len() as u32).map(|k| base + k));
        }
        (ColSlice::Str { .. }, ColSlice::Int(_)) => {}
        _ => {
            for k in 0..chunk.len() {
                let row = chunk.start() + k;
                if cols.cell_cmp(i, row, cols, j, row) == std::cmp::Ordering::Less {
                    keep.push(base + k as u32);
                }
            }
        }
    }
}

/// Selection vector for `σ_{i=c}` over one chunk.
fn sel_eq_const(chunk: Chunk<'_>, i: usize, c: &Value, keep: &mut Vec<u32>) {
    let base = chunk.start() as u32;
    match (chunk.col(i), c) {
        (ColSlice::Int(v), Value::Int(x)) => {
            for (k, &val) in v.iter().enumerate() {
                if val == *x {
                    keep.push(base + k as u32);
                }
            }
        }
        (ColSlice::Str { codes, dict }, Value::Str(s)) => {
            // One dictionary lookup, then a dense code scan; a constant
            // absent from the dictionary matches nothing.
            if let Some(code) = dict.code_of(s) {
                for (k, &cd) in codes.iter().enumerate() {
                    if cd == code {
                        keep.push(base + k as u32);
                    }
                }
            }
        }
        (ColSlice::Mixed(v), c) => {
            for (k, val) in v.iter().enumerate() {
                if val == c {
                    keep.push(base + k as u32);
                }
            }
        }
        // Typed column vs other-variant constant: no row can match.
        (ColSlice::Int(_), Value::Str(_)) | (ColSlice::Str { .. }, Value::Int(_)) => {}
    }
}

// ---------------------------------------------------------------------------
// Hash join / semijoin
// ---------------------------------------------------------------------------

/// Build the hash table over the right operand's key columns: composite
/// key hash → ascending row indices. Collisions are resolved by the
/// probes' exact [`keys_eq`] check.
fn build_table(
    cols: &Columns,
    key_cols: &[usize],
    chunk_rows: usize,
    scratch: &mut Vec<u64>,
) -> FxHashMap<u64, Vec<u32>> {
    let mut table: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    table.reserve(cols.len());
    for chunk in cols.chunks(chunk_rows) {
        hash_rows(chunk, key_cols, scratch);
        for (k, &h) in scratch.iter().enumerate() {
            table.entry(h).or_default().push((chunk.start() + k) as u32);
        }
    }
    table
}

/// Vectorized `r₁ ⋈θ r₂`. Output-equivalent to [`ops::join`]; conditions
/// with no equality atom fall back to the row nested loop.
pub fn join(r1: &Relation, r2: &Relation, theta: &Condition) -> Relation {
    join_chunked(r1, r2, theta, effective_chunk_rows())
}

/// [`join`] with an explicit chunk size.
pub fn join_chunked(
    r1: &Relation,
    r2: &Relation,
    theta: &Condition,
    chunk_rows: usize,
) -> Relation {
    let (eq, residual) = split_condition(theta);
    if eq.is_empty() || !indexable(r1) || !indexable(r2) {
        return ops::join(r1, r2, theta);
    }
    let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
    let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
    let (c1, c2) = (r1.columns(), r2.columns());
    let mut scratch: Vec<u64> = Vec::new();
    let table = build_table(c2, &right_cols, chunk_rows, &mut scratch);
    let mut out: Vec<Tuple> = Vec::new();
    for chunk in c1.chunks(chunk_rows) {
        hash_rows(chunk, &left_cols, &mut scratch);
        for (k, &h) in scratch.iter().enumerate() {
            let Some(cands) = table.get(&h) else { continue };
            let li = chunk.start() + k;
            let t1 = &r1.tuples()[li];
            for &ri in cands {
                let ri = ri as usize;
                if keys_eq(c1, li, c2, ri, &eq) {
                    let t2 = &r2.tuples()[ri];
                    if residual.eval(t1.values(), t2.values()) {
                        out.push(t1.concat(t2));
                    }
                }
            }
        }
    }
    Relation::from_tuples(r1.arity() + r2.arity(), out).expect("join arity is n+m")
}

/// Vectorized `r₁ ⋉θ r₂`. Output-equivalent to [`ops::semijoin`];
/// conditions with no equality atom fall back to the row implementation.
pub fn semijoin(r1: &Relation, r2: &Relation, theta: &Condition) -> Relation {
    semijoin_chunked(r1, r2, theta, effective_chunk_rows())
}

/// [`semijoin`] with an explicit chunk size.
pub fn semijoin_chunked(
    r1: &Relation,
    r2: &Relation,
    theta: &Condition,
    chunk_rows: usize,
) -> Relation {
    let (eq, residual) = split_condition(theta);
    if eq.is_empty() || !indexable(r1) || !indexable(r2) {
        return ops::semijoin(r1, r2, theta);
    }
    let left_cols: Vec<usize> = eq.iter().map(|&(lc, _)| lc).collect();
    let right_cols: Vec<usize> = eq.iter().map(|&(_, rc)| rc).collect();
    let (c1, c2) = (r1.columns(), r2.columns());
    let mut scratch: Vec<u64> = Vec::new();
    let table = build_table(c2, &right_cols, chunk_rows, &mut scratch);
    let mut keep: Vec<u32> = Vec::new();
    for chunk in c1.chunks(chunk_rows) {
        hash_rows(chunk, &left_cols, &mut scratch);
        for (k, &h) in scratch.iter().enumerate() {
            let Some(cands) = table.get(&h) else { continue };
            let li = chunk.start() + k;
            let survives = cands.iter().any(|&ri| {
                let ri = ri as usize;
                keys_eq(c1, li, c2, ri, &eq)
                    && (residual.is_empty()
                        || residual.eval(r1.tuples()[li].values(), r2.tuples()[ri].values()))
            });
            if survives {
                keep.push(li as u32);
            }
        }
    }
    gather(r1, &keep)
}

// ---------------------------------------------------------------------------
// Merge join / semijoin over sorted column runs
// ---------------------------------------------------------------------------

/// Compare the first `k` columns of row `i` of `ca` and row `j` of `cb`.
#[inline]
fn cmp_prefix(ca: &Columns, i: usize, cb: &Columns, j: usize, k: usize) -> std::cmp::Ordering {
    for c in 0..k {
        match ca.cell_cmp(c, i, cb, c, j) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// End of the run of rows sharing row `start`'s first `k` column values.
#[inline]
fn run_end(cols: &Columns, start: usize, k: usize) -> usize {
    let mut end = start + 1;
    while end < cols.len() && cmp_prefix(cols, end, cols, start, k) == std::cmp::Ordering::Equal {
        end += 1;
    }
    end
}

/// Vectorized merge equi-join on an aligned key prefix of length `k`
/// (see [`ops::merge_prefix_len`]). Output-equivalent to
/// [`ops::merge_join`]; the non-matching side skips a whole column run
/// per comparison.
pub fn merge_join(r1: &Relation, r2: &Relation, k: usize, residual: &Condition) -> Relation {
    let (ca, cb) = (r1.columns(), r2.columns());
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ca.len() && j < cb.len() {
        match cmp_prefix(ca, i, cb, j, k) {
            std::cmp::Ordering::Less => i = run_end(ca, i, k),
            std::cmp::Ordering::Greater => j = run_end(cb, j, k),
            std::cmp::Ordering::Equal => {
                let (i_end, j_end) = (run_end(ca, i, k), run_end(cb, j, k));
                for t1 in &a[i..i_end] {
                    for t2 in &b[j..j_end] {
                        if residual.eval(t1.values(), t2.values()) {
                            out.push(t1.concat(t2));
                        }
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation::from_sorted_tuples(r1.arity() + r2.arity(), out)
}

/// Vectorized merge equi-semijoin on an aligned key prefix of length
/// `k`. Output-equivalent to [`ops::merge_semijoin`].
pub fn merge_semijoin(r1: &Relation, r2: &Relation, k: usize, residual: &Condition) -> Relation {
    let (ca, cb) = (r1.columns(), r2.columns());
    let (a, b) = (r1.tuples(), r2.tuples());
    let mut out: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ca.len() && j < cb.len() {
        match cmp_prefix(ca, i, cb, j, k) {
            std::cmp::Ordering::Less => i = run_end(ca, i, k),
            std::cmp::Ordering::Greater => j = run_end(cb, j, k),
            std::cmp::Ordering::Equal => {
                let (i_end, j_end) = (run_end(ca, i, k), run_end(cb, j, k));
                for t1 in &a[i..i_end] {
                    if residual.is_empty()
                        || b[j..j_end]
                            .iter()
                            .any(|t2| residual.eval(t1.values(), t2.values()))
                    {
                        out.push(t1.clone());
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation::from_sorted_tuples(r1.arity(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_algebra::{Atom, CompOp};

    fn rel(rows: &[&[i64]]) -> Relation {
        Relation::from_int_rows(rows)
    }

    fn eq_cond(l: usize, r: usize) -> Condition {
        Condition::new([Atom {
            left: l,
            op: CompOp::Eq,
            right: r,
        }])
    }

    #[test]
    fn select_matches_row_select_across_chunk_sizes() {
        let rows: Vec<Vec<i64>> = (0..50).map(|i| vec![i % 7, i % 3, i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let r = rel(&refs);
        for sel in [
            Selection::Eq(1, 2),
            Selection::Lt(1, 2),
            Selection::EqConst(1, Value::int(3)),
            Selection::EqConst(1, Value::int(99)),
            Selection::EqConst(1, Value::str("nope")),
        ] {
            let expect = ops::select(&r, &sel);
            for chunk in [1usize, 3, 7, 49, 50, 51, DEFAULT_CHUNK_ROWS] {
                assert_eq!(select_chunked(&r, &sel, chunk), expect, "{sel:?} @ {chunk}");
            }
        }
    }

    #[test]
    fn select_on_string_and_mixed_columns() {
        let r = Relation::from_str_rows(&[&["a", "a"], &["a", "b"], &["b", "b"]]);
        assert_eq!(
            select_chunked(&r, &Selection::Eq(1, 2), 2),
            ops::select(&r, &Selection::Eq(1, 2))
        );
        assert_eq!(
            select_chunked(&r, &Selection::Lt(1, 2), 2),
            ops::select(&r, &Selection::Lt(1, 2))
        );
        assert_eq!(
            select_chunked(&r, &Selection::EqConst(2, Value::str("b")), 2),
            ops::select(&r, &Selection::EqConst(2, Value::str("b")))
        );
        // Mixed column: ints and strings in one column.
        let m = Relation::from_tuples(
            2,
            vec![
                sj_storage::tuple![1, 1],
                sj_storage::tuple![1, "x"],
                sj_storage::tuple!["x", "x"],
            ],
        )
        .unwrap();
        for sel in [
            Selection::Eq(1, 2),
            Selection::Lt(1, 2),
            Selection::EqConst(1, Value::str("x")),
            Selection::EqConst(1, Value::int(1)),
        ] {
            for chunk in [1usize, 2, 4] {
                assert_eq!(
                    select_chunked(&m, &sel, chunk),
                    ops::select(&m, &sel),
                    "{sel:?} @ {chunk}"
                );
            }
        }
    }

    #[test]
    fn join_and_semijoin_match_row_versions() {
        let r1 = rel(&[&[1, 10], &[2, 20], &[3, 30], &[3, 31]]);
        let r2 = rel(&[&[10, 3], &[20, 2], &[40, 9], &[10, 3]]);
        let theta = eq_cond(2, 1); // r1.col2 == r2.col1
        for chunk in [1usize, 2, 3, 4, 5] {
            assert_eq!(
                join_chunked(&r1, &r2, &theta, chunk),
                ops::join(&r1, &r2, &theta),
                "join @ {chunk}"
            );
            assert_eq!(
                semijoin_chunked(&r1, &r2, &theta, chunk),
                ops::semijoin(&r1, &r2, &theta),
                "semijoin @ {chunk}"
            );
        }
    }

    #[test]
    fn join_with_residual_and_no_eq_fallback() {
        let r1 = rel(&[&[1, 5], &[2, 6], &[3, 7]]);
        let r2 = rel(&[&[1, 6], &[2, 6], &[3, 9]]);
        // Mixed condition: equality plus a residual `<`.
        let theta = Condition::new([
            Atom {
                left: 1,
                op: CompOp::Eq,
                right: 1,
            },
            Atom {
                left: 2,
                op: CompOp::Lt,
                right: 2,
            },
        ]);
        assert_eq!(
            join_chunked(&r1, &r2, &theta, 2),
            ops::join(&r1, &r2, &theta)
        );
        assert_eq!(
            semijoin_chunked(&r1, &r2, &theta, 2),
            ops::semijoin(&r1, &r2, &theta)
        );
        // No equality atom: falls back to the row nested loop.
        let lt_only = Condition::new([Atom {
            left: 1,
            op: CompOp::Lt,
            right: 1,
        }]);
        assert_eq!(
            join_chunked(&r1, &r2, &lt_only, 2),
            ops::join(&r1, &r2, &lt_only)
        );
        assert_eq!(
            semijoin_chunked(&r1, &r2, &lt_only, 2),
            ops::semijoin(&r1, &r2, &lt_only)
        );
    }

    #[test]
    fn cross_variant_keys_never_collide_into_matches() {
        // Left joins an int key against a right string key: no matches,
        // even though hash buckets could collide.
        let r1 = rel(&[&[1], &[2]]);
        let r2 = Relation::from_str_rows(&[&["1"], &["2"]]);
        let theta = eq_cond(1, 1);
        assert!(join_chunked(&r1, &r2, &theta, 1).is_empty());
        assert!(semijoin_chunked(&r1, &r2, &theta, 1).is_empty());
    }

    #[test]
    fn merge_paths_match_row_versions() {
        let r1 = rel(&[&[1, 10], &[1, 11], &[2, 20], &[4, 40]]);
        let r2 = rel(&[&[1, 5], &[2, 6], &[2, 7], &[3, 8]]);
        let none = Condition::new([]);
        assert_eq!(
            merge_join(&r1, &r2, 1, &none),
            ops::merge_join(&r1, &r2, 1, &none)
        );
        assert_eq!(
            merge_semijoin(&r1, &r2, 1, &none),
            ops::merge_semijoin(&r1, &r2, 1, &none)
        );
        let residual = Condition::new([Atom {
            left: 2,
            op: CompOp::Lt,
            right: 2,
        }]);
        assert_eq!(
            merge_join(&r1, &r2, 1, &residual),
            ops::merge_join(&r1, &r2, 1, &residual)
        );
        assert_eq!(
            merge_semijoin(&r1, &r2, 1, &residual),
            ops::merge_semijoin(&r1, &r2, 1, &residual)
        );
        // String keys exercise the dictionary-code compare.
        let s1 = Relation::from_str_rows(&[&["a", "x"], &["b", "y"], &["c", "z"]]);
        let s2 = Relation::from_str_rows(&[&["b", "p"], &["c", "q"], &["d", "r"]]);
        assert_eq!(
            merge_join(&s1, &s2, 1, &none),
            ops::merge_join(&s1, &s2, 1, &none)
        );
        assert_eq!(
            merge_semijoin(&s1, &s2, 1, &none),
            ops::merge_semijoin(&s1, &s2, 1, &none)
        );
    }

    #[test]
    fn empty_operands() {
        let e = Relation::empty(2);
        let r = rel(&[&[1, 2]]);
        let theta = eq_cond(1, 1);
        assert!(join_chunked(&e, &r, &theta, 4).is_empty());
        assert!(join_chunked(&r, &e, &theta, 4).is_empty());
        assert!(semijoin_chunked(&e, &r, &theta, 4).is_empty());
        assert!(semijoin_chunked(&r, &e, &theta, 4).is_empty());
        assert!(select_chunked(&e, &Selection::Eq(1, 2), 4).is_empty());
        assert!(merge_join(&e, &r, 1, &Condition::new([])).is_empty());
    }
}
