//! Set-semantics relations.

use crate::column::Columns;
use crate::error::StorageError;
use crate::hash::FxHasher;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// A finite **set** of tuples of a fixed arity.
///
/// The paper's relations are sets (its Definition 15 measures size as
/// *cardinality*), so `Relation` maintains a canonical representation:
/// tuples are kept sorted and deduplicated at all times. Consequently
///
/// * structural equality (`==`) is set equality,
/// * membership is a binary search,
/// * iteration order is deterministic (lexicographic),
/// * the set operators union / difference / intersection are linear merges.
///
/// An arity-0 relation is either empty (`{}`, "false") or contains the empty
/// tuple (`{()}`, "true"); both are representable and behave correctly under
/// the set operations.
///
/// Alongside the canonical row representation the relation carries a
/// lazily built, cached **columnar view** ([`Relation::columns`]) used by
/// the vectorized operators in `sj-eval`; the cache is derived state — it
/// never participates in equality or hashing and is invalidated by the
/// mutating operations.
#[derive(Clone)]
pub struct Relation {
    arity: usize,
    /// Sorted, deduplicated.
    tuples: Vec<Tuple>,
    /// Columnar image of `tuples`, built on first use. Derived state:
    /// excluded from `PartialEq`/`Hash`, reset by `insert`/`remove`.
    cols: OnceLock<Arc<Columns>>,
}

/// Set equality on (arity, tuples); the columnar cache is derived state.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Hash for Relation {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.arity.hash(state);
        self.tuples.hash(state);
    }
}

impl Relation {
    /// Internal constructor for tuples already known to be canonical.
    #[inline]
    fn raw(arity: usize, tuples: Vec<Tuple>) -> Self {
        Relation {
            arity,
            tuples,
            cols: OnceLock::new(),
        }
    }

    /// The empty relation of the given arity.
    pub fn empty(arity: usize) -> Self {
        Relation::raw(arity, Vec::new())
    }

    /// Build a relation from tuples, canonicalizing (sort + dedup).
    ///
    /// Returns an error if some tuple has the wrong arity.
    pub fn from_tuples(
        arity: usize,
        tuples: impl IntoIterator<Item = Tuple>,
    ) -> crate::Result<Self> {
        let mut v: Vec<Tuple> = Vec::new();
        for t in tuples {
            if t.arity() != arity {
                return Err(StorageError::ArityMismatch {
                    expected: arity,
                    found: t.arity(),
                });
            }
            v.push(t);
        }
        v.sort_unstable();
        v.dedup();
        Ok(Relation::raw(arity, v))
    }

    /// Build a relation from tuples **already in canonical order**
    /// (strictly increasing, hence deduplicated) without re-sorting.
    ///
    /// The merge-based physical operators in `sj-eval` produce their
    /// output in canonical order; this constructor lets them skip the
    /// `O(n log n)` canonicalization of [`Relation::from_tuples`]. The
    /// order claim is verified with a linear scan: input that is *not*
    /// strictly increasing is canonicalized (sorted + deduplicated)
    /// instead of silently breaking the representation invariant — the
    /// constructor is total, misuse merely forfeits the fast path. Arity
    /// agreement is debug-checked like the other trusted paths.
    pub fn from_sorted_tuples(arity: usize, mut tuples: Vec<Tuple>) -> Self {
        debug_assert!(
            tuples.iter().all(|t| t.arity() == arity),
            "from_sorted_tuples: arity mismatch"
        );
        if !tuples.windows(2).all(|w| w[0] < w[1]) {
            tuples.sort_unstable();
            tuples.dedup();
        }
        Relation::raw(arity, tuples)
    }

    /// Build from rows of integers; arity inferred from the first row
    /// (0 rows ⇒ use [`Relation::empty`]). Panics on ragged rows — intended
    /// for tests and the paper-figure constants.
    pub fn from_int_rows(rows: &[&[i64]]) -> Self {
        let arity = rows.first().map_or(0, |r| r.len());
        Relation::from_tuples(arity, rows.iter().map(|r| Tuple::from_ints(r)))
            .expect("ragged integer rows")
    }

    /// Build from rows of strings; arity inferred from the first row.
    /// Panics on ragged rows — intended for tests and paper-figure constants.
    pub fn from_str_rows(rows: &[&[&str]]) -> Self {
        let arity = rows.first().map_or(0, |r| r.len());
        Relation::from_tuples(arity, rows.iter().map(|r| Tuple::from_strs(r)))
            .expect("ragged string rows")
    }

    /// Build an arity-1 relation out of single values.
    pub fn unary(values: impl IntoIterator<Item = Value>) -> Self {
        Relation::from_tuples(1, values.into_iter().map(|v| Tuple::new(vec![v])))
            .expect("unary tuples always have arity 1")
    }

    /// The relation's arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Cardinality — the paper's notion of relation *size* (Definition 15).
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation has no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Set membership (binary search over the canonical order).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.binary_search(t).is_ok()
    }

    /// Insert a tuple, keeping the canonical order. Returns `true` if the
    /// tuple was new. Errors on arity mismatch.
    pub fn insert(&mut self, t: Tuple) -> crate::Result<bool> {
        if t.arity() != self.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                found: t.arity(),
            });
        }
        match self.tuples.binary_search(&t) {
            Ok(_) => Ok(false),
            Err(pos) => {
                self.tuples.insert(pos, t);
                self.cols.take();
                Ok(true)
            }
        }
    }

    /// Remove a tuple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        match self.tuples.binary_search(t) {
            Ok(pos) => {
                self.tuples.remove(pos);
                self.cols.take();
                true
            }
            Err(_) => false,
        }
    }

    /// The columnar view of the relation (see [`crate::column`]): typed
    /// per-column vectors over the same rows, in the same canonical
    /// order. Built lazily on first use and cached; `insert`/`remove`
    /// invalidate the cache. Row `i` of the columns is tuple `i` of
    /// [`Relation::tuples`].
    #[inline]
    pub fn columns(&self) -> &Columns {
        self.columns_shared()
    }

    /// [`Relation::columns`] as a shared handle, for operators that fan
    /// the view out across worker threads.
    pub fn columns_shared(&self) -> &Arc<Columns> {
        self.cols
            .get_or_init(|| Arc::new(Columns::from_tuples(self.arity, &self.tuples)))
    }

    /// Iterate tuples in canonical (sorted) order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice (sorted, deduplicated).
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Set union (arity must match). Linear merge of the two sorted runs.
    pub fn union(&self, other: &Relation) -> crate::Result<Relation> {
        self.check_same_arity(other)?;
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.tuples.len() && j < other.tuples.len() {
            match self.tuples[i].cmp(&other.tuples[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.tuples[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.tuples[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.tuples[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.tuples[i..]);
        out.extend_from_slice(&other.tuples[j..]);
        Ok(Relation::raw(self.arity, out))
    }

    /// Set difference `self − other` (arity must match).
    pub fn difference(&self, other: &Relation) -> crate::Result<Relation> {
        self.check_same_arity(other)?;
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.tuples.len() {
            if j >= other.tuples.len() {
                out.extend_from_slice(&self.tuples[i..]);
                break;
            }
            match self.tuples[i].cmp(&other.tuples[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.tuples[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(Relation::raw(self.arity, out))
    }

    /// Set intersection (arity must match).
    pub fn intersection(&self, other: &Relation) -> crate::Result<Relation> {
        self.check_same_arity(other)?;
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.tuples.len() && j < other.tuples.len() {
            match self.tuples[i].cmp(&other.tuples[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.tuples[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(Relation::raw(self.arity, out))
    }

    /// The hash-partition index of a tuple under a key of 0-based
    /// `cols` and `n` partitions — the single source of truth for
    /// [`Relation::partition_by_hash`], exposed so operators and tests
    /// can predict placement. With `cols` empty every tuple lands in
    /// partition 0. `n = 0` is treated as one partition.
    pub fn partition_of(t: &Tuple, cols: &[usize], n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let mut h = FxHasher::default();
        for &c in cols {
            t[c].hash(&mut h);
        }
        (h.finish() % n as u64) as usize
    }

    /// Split the relation into `n` disjoint hash partitions keyed on the
    /// 0-based `cols`: every tuple goes to exactly one partition
    /// ([`Relation::partition_of`]), so equal keys always co-locate and
    /// the union of the partitions round-trips to the input.
    ///
    /// Tuples are visited in canonical order, so each partition is a
    /// strictly increasing subsequence and inherits the canonical
    /// representation without re-sorting. The partition-parallel
    /// operators in `sj-eval` and `sj-setjoin` are built on this: build
    /// and probe run per partition, and any per-partition results can be
    /// merged back without global re-deduplication (keys never span
    /// partitions).
    pub fn partition_by_hash(&self, cols: &[usize], n: usize) -> Vec<Relation> {
        let n = n.max(1);
        debug_assert!(
            cols.iter().all(|&c| c < self.arity),
            "partition_by_hash: key column out of range"
        );
        let mut parts: Vec<Vec<Tuple>> = vec![Vec::new(); n];
        if n > 1 {
            for t in &self.tuples {
                parts[Self::partition_of(t, cols, n)].push(t.clone());
            }
        } else {
            parts[0] = self.tuples.clone();
        }
        parts
            .into_iter()
            .map(|p| Relation::raw(self.arity, p))
            .collect()
    }

    /// The **zero-copy** variant of [`Relation::partition_by_hash`]:
    /// the same disjoint hash partitions, but as lists of tuple
    /// *indices* into [`Relation::tuples`] instead of cloned tuples.
    /// Each list is strictly ascending, so visiting a partition's
    /// indices walks its tuples in canonical order — partition-parallel
    /// operators can build and probe through these views without ever
    /// copying a tuple (the scheme the `sj-setjoin` parallel operators
    /// pioneered, ported here for `sj-eval`'s planned-query path).
    ///
    /// `n = 0` is treated as one partition; with `cols` empty every
    /// tuple lands in partition 0 (same conventions as
    /// [`Relation::partition_of`]).
    ///
    /// Panics when the relation exceeds [`u32::MAX`] rows — index views
    /// are `u32` by design; use [`Relation::try_partition_indices`] for
    /// the fallible variant with a typed error.
    pub fn partition_indices(&self, cols: &[usize], n: usize) -> Vec<Vec<u32>> {
        self.try_partition_indices(cols, n)
            .expect("partition_indices: relation too large for u32 index views")
    }

    /// Fallible [`Relation::partition_indices`]: returns
    /// [`StorageError::RelationTooLarge`] instead of silently truncating
    /// (or panicking) when the relation has more than [`u32::MAX`] rows
    /// and its tuple positions no longer fit the `u32` index views.
    pub fn try_partition_indices(&self, cols: &[usize], n: usize) -> crate::Result<Vec<Vec<u32>>> {
        ensure_u32_indexable(self.tuples.len())?;
        let n = n.max(1);
        debug_assert!(
            cols.iter().all(|&c| c < self.arity),
            "partition_indices: key column out of range"
        );
        let mut parts: Vec<Vec<u32>> = vec![Vec::new(); n];
        if n > 1 {
            for (i, t) in self.tuples.iter().enumerate() {
                parts[Self::partition_of(t, cols, n)].push(i as u32);
            }
        } else {
            parts[0] = (0..self.tuples.len() as u32).collect();
        }
        Ok(parts)
    }

    /// [`Relation::partition_by_hash`] on a shared handle, returning
    /// `Arc`-shared partitions. The degenerate single-partition case is
    /// clone-free: the one "partition" is the input's own allocation
    /// (`Arc::clone`), which is what lets a parallelism degree of 1 cost
    /// nothing over the serial path.
    pub fn partition_by_hash_shared(
        self: &Arc<Self>,
        cols: &[usize],
        n: usize,
    ) -> Vec<Arc<Relation>> {
        if n <= 1 {
            return vec![Arc::clone(self)];
        }
        self.partition_by_hash(cols, n)
            .into_iter()
            .map(Arc::new)
            .collect()
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.tuples.iter().all(|t| other.contains(t))
    }

    /// All values occurring anywhere in the relation, sorted, deduplicated.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut v: Vec<Value> = self.tuples.iter().flat_map(|t| t.iter().cloned()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    fn check_same_arity(&self, other: &Relation) -> crate::Result<()> {
        if self.arity != other.arity {
            return Err(StorageError::ArityMismatch {
                expected: self.arity,
                found: other.arity,
            });
        }
        Ok(())
    }
}

/// The boundary check behind every `u32` tuple-index view. A relation of
/// `rows` tuples uses positions `0..rows`, but partition bookkeeping also
/// stores `rows` itself as a `u32` (the `0..len as u32` single-partition
/// range), so the safe capacity is `u32::MAX` **rows** — not the
/// `u32::MAX + 1` that position indexing alone would allow. Anything
/// larger gets a typed [`StorageError::RelationTooLarge`] instead of a
/// silent `as u32` truncation.
pub fn ensure_u32_indexable(rows: usize) -> crate::Result<()> {
    if rows > u32::MAX as usize {
        return Err(StorageError::RelationTooLarge { rows });
    }
    Ok(())
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Relation(arity={}, {{", self.arity)?;
        for (i, t) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t:?}")?;
        }
        write!(f, "}})")
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;
    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn r(rows: &[&[i64]]) -> Relation {
        Relation::from_int_rows(rows)
    }

    #[test]
    fn canonicalization_dedups_and_sorts() {
        let a = r(&[&[2, 1], &[1, 2], &[2, 1]]);
        assert_eq!(a.len(), 2);
        let tuples: Vec<_> = a.iter().cloned().collect();
        assert_eq!(
            tuples,
            vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[2, 1])]
        );
    }

    #[test]
    fn set_equality_ignores_input_order() {
        assert_eq!(r(&[&[1], &[2]]), r(&[&[2], &[1]]));
    }

    #[test]
    fn from_sorted_tuples_trusts_sorted_and_repairs_unsorted() {
        let sorted = vec![Tuple::from_ints(&[1, 2]), Tuple::from_ints(&[2, 1])];
        let a = Relation::from_sorted_tuples(2, sorted);
        assert_eq!(a, r(&[&[1, 2], &[2, 1]]));
        // Unsorted / duplicated input is canonicalized, not trusted.
        let unsorted = vec![
            Tuple::from_ints(&[2, 1]),
            Tuple::from_ints(&[1, 2]),
            Tuple::from_ints(&[2, 1]),
        ];
        let b = Relation::from_sorted_tuples(2, unsorted);
        assert_eq!(b, a);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn arity_checked_on_build_and_insert() {
        let e = Relation::from_tuples(2, vec![Tuple::from_ints(&[1])]);
        assert!(matches!(
            e,
            Err(StorageError::ArityMismatch {
                expected: 2,
                found: 1
            })
        ));
        let mut a = Relation::empty(1);
        assert!(a.insert(Tuple::from_ints(&[1, 2])).is_err());
    }

    #[test]
    fn insert_remove_contains() {
        let mut a = Relation::empty(2);
        assert!(a.insert(tuple![1, 2]).unwrap());
        assert!(!a.insert(tuple![1, 2]).unwrap());
        assert!(a.contains(&tuple![1, 2]));
        assert!(!a.contains(&tuple![2, 1]));
        assert!(a.remove(&tuple![1, 2]));
        assert!(!a.remove(&tuple![1, 2]));
        assert!(a.is_empty());
    }

    #[test]
    fn union_difference_intersection() {
        let a = r(&[&[1], &[2], &[3]]);
        let b = r(&[&[2], &[4]]);
        assert_eq!(a.union(&b).unwrap(), r(&[&[1], &[2], &[3], &[4]]));
        assert_eq!(a.difference(&b).unwrap(), r(&[&[1], &[3]]));
        assert_eq!(a.intersection(&b).unwrap(), r(&[&[2]]));
        assert_eq!(b.difference(&a).unwrap(), r(&[&[4]]));
    }

    #[test]
    fn set_ops_reject_arity_mismatch() {
        let a = Relation::empty(1);
        let b = Relation::empty(2);
        assert!(a.union(&b).is_err());
        assert!(a.difference(&b).is_err());
        assert!(a.intersection(&b).is_err());
    }

    #[test]
    fn subset() {
        let a = r(&[&[1], &[2]]);
        let b = r(&[&[1], &[2], &[3]]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Relation::empty(1).is_subset_of(&a));
        assert!(!Relation::empty(2).is_subset_of(&a));
    }

    #[test]
    fn nullary_relations() {
        let f = Relation::empty(0);
        let t = Relation::from_tuples(0, vec![Tuple::empty()]).unwrap();
        assert_eq!(f.len(), 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.union(&f).unwrap(), t);
        assert_eq!(t.difference(&t).unwrap(), f);
    }

    #[test]
    fn active_domain_sorted() {
        let a = r(&[&[3, 1], &[2, 3]]);
        assert_eq!(
            a.active_domain(),
            vec![Value::int(1), Value::int(2), Value::int(3)]
        );
    }

    #[test]
    fn unary_builder() {
        let a = Relation::unary(vec![Value::int(7), Value::int(8), Value::int(7)]);
        assert_eq!(a, r(&[&[7], &[8]]));
    }

    #[test]
    fn partition_by_hash_is_a_disjoint_cover() {
        let rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i % 37, i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Relation::from_int_rows(&refs);
        for n in [1usize, 2, 3, 4, 8] {
            let parts = a.partition_by_hash(&[0], n);
            assert_eq!(parts.len(), n);
            // Arity preserved, disjoint, union round-trips to the input.
            let mut union = Relation::empty(a.arity());
            let mut total = 0;
            for p in &parts {
                assert_eq!(p.arity(), a.arity());
                assert!(p.intersection(&union).unwrap().is_empty(), "n = {n}");
                union = union.union(p).unwrap();
                total += p.len();
            }
            assert_eq!(total, a.len(), "partitions are disjoint at n = {n}");
            assert_eq!(union, a, "partitions cover the input at n = {n}");
        }
    }

    #[test]
    fn partition_by_hash_keeps_equal_keys_together() {
        let rows: Vec<Vec<i64>> = (0..120).map(|i| vec![i % 10, i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Relation::from_int_rows(&refs);
        let n = 4;
        let parts = a.partition_by_hash(&[0], n);
        for (pi, p) in parts.iter().enumerate() {
            for t in p {
                assert_eq!(
                    Relation::partition_of(t, &[0], n),
                    pi,
                    "tuple {t:?} in the wrong partition"
                );
            }
        }
        // Same key ⇒ same partition: each of the 10 keys appears in
        // exactly one partition.
        for key in 0..10i64 {
            let holding = parts
                .iter()
                .filter(|p| p.iter().any(|t| t[0] == Value::int(key)))
                .count();
            assert_eq!(holding, 1, "key {key} spans partitions");
        }
        // Each partition is itself canonical (strictly increasing).
        for p in &parts {
            assert!(p.tuples().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn partition_indices_agree_with_partition_by_hash() {
        let rows: Vec<Vec<i64>> = (0..200).map(|i| vec![i % 37, i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Relation::from_int_rows(&refs);
        for n in [1usize, 2, 4, 8] {
            let by_tuple = a.partition_by_hash(&[0], n);
            let by_index = a.partition_indices(&[0], n);
            assert_eq!(by_index.len(), n);
            for (p_rel, p_idx) in by_tuple.iter().zip(&by_index) {
                // Same tuples in the same order, and indices ascending
                // (canonical order preserved through the view).
                let via_idx: Vec<&Tuple> = p_idx.iter().map(|&i| &a.tuples()[i as usize]).collect();
                let direct: Vec<&Tuple> = p_rel.iter().collect();
                assert_eq!(via_idx, direct, "n = {n}");
                assert!(p_idx.windows(2).all(|w| w[0] < w[1]), "n = {n}");
            }
            let total: usize = by_index.iter().map(|p| p.len()).sum();
            assert_eq!(total, a.len());
        }
        // Empty key and empty input conventions match partition_by_hash.
        let idx = a.partition_indices(&[], 3);
        assert_eq!(idx[0].len(), a.len());
        assert!(idx[1].is_empty() && idx[2].is_empty());
        assert!(Relation::empty(2)
            .partition_indices(&[0], 4)
            .iter()
            .all(|p| p.is_empty()));
        // n = 0 behaves as one partition.
        assert_eq!(a.partition_indices(&[0], 0).len(), 1);
    }

    #[test]
    fn partition_single_degenerates_to_arc_share() {
        let a = Arc::new(r(&[&[1, 2], &[3, 4]]));
        let parts = a.partition_by_hash_shared(&[0], 1);
        assert_eq!(parts.len(), 1);
        assert!(
            Arc::ptr_eq(&a, &parts[0]),
            "n = 1 must share the input allocation, not clone it"
        );
        // n = 0 is treated as one partition, same sharing guarantee.
        let parts0 = a.partition_by_hash_shared(&[0], 0);
        assert!(Arc::ptr_eq(&a, &parts0[0]));
        // The plain variant at n = 1 returns the input as its only part.
        let plain = a.partition_by_hash(&[0], 1);
        assert_eq!(plain, vec![(*a).clone()]);
    }

    #[test]
    fn partition_by_hash_empty_key_and_empty_input() {
        let a = r(&[&[1, 2], &[3, 4]]);
        // Empty key: every tuple hashes alike — all land in partition 0.
        let parts = a.partition_by_hash(&[], 3);
        assert_eq!(parts[0], a);
        assert!(parts[1].is_empty() && parts[2].is_empty());
        // Empty input: n empty partitions of the right arity.
        let parts = Relation::empty(2).partition_by_hash(&[0, 1], 4);
        assert_eq!(parts.len(), 4);
        assert!(parts.iter().all(|p| p.is_empty() && p.arity() == 2));
    }

    #[test]
    fn str_rows() {
        let a = Relation::from_str_rows(&[&["an", "headache"], &["bob", "sore throat"]]);
        assert_eq!(a.arity(), 2);
        assert!(a.contains(&tuple!["an", "headache"]));
    }

    #[test]
    fn u32_index_boundary_arithmetic() {
        // The capacity is u32::MAX rows exactly: the largest admissible
        // relation has positions 0..u32::MAX (last position u32::MAX − 1)
        // and a representable `len as u32`.
        assert!(ensure_u32_indexable(0).is_ok());
        assert!(ensure_u32_indexable(u32::MAX as usize).is_ok());
        assert_eq!(
            ensure_u32_indexable(u32::MAX as usize + 1),
            Err(StorageError::RelationTooLarge {
                rows: u32::MAX as usize + 1
            })
        );
        assert!(ensure_u32_indexable(usize::MAX).is_err());
        // The fallible partition API threads the check through; in-range
        // relations succeed and agree with the panicking variant.
        let a = r(&[&[1, 2], &[3, 4]]);
        assert_eq!(
            a.try_partition_indices(&[0], 4).unwrap(),
            a.partition_indices(&[0], 4)
        );
    }

    #[test]
    fn columnar_cache_tracks_mutation() {
        let mut a = r(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.columns().len(), 2);
        assert_eq!(a.columns().col(0).as_ints(), Some(&[1i64, 3][..]));
        // Insert invalidates the cached view.
        a.insert(tuple![2, 9]).unwrap();
        assert_eq!(a.columns().len(), 3);
        assert_eq!(a.columns().col(0).as_ints(), Some(&[1i64, 2, 3][..]));
        // Remove does too.
        a.remove(&tuple![1, 2]);
        assert_eq!(a.columns().col(0).as_ints(), Some(&[2i64, 3][..]));
        // A failed insert (duplicate) leaves the view untouched but
        // correct either way.
        assert!(!a.insert(tuple![2, 9]).unwrap());
        assert_eq!(a.columns().len(), 2);
    }

    #[test]
    fn equality_and_hash_ignore_the_columnar_cache() {
        use std::collections::hash_map::DefaultHasher;
        let a = r(&[&[1], &[2]]);
        let b = r(&[&[2], &[1]]);
        let _ = a.columns(); // build a's cache only
        assert_eq!(a, b);
        let h = |x: &Relation| {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&a), h(&b));
        // Clones share the set identity regardless of cache state.
        let c = a.clone();
        assert_eq!(c, a);
        assert_eq!(c.columns().len(), 2);
    }
}
