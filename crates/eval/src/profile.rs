//! `EXPLAIN ANALYZE`-style query profiles: the per-node breakdown of an
//! instrumented run — estimated vs actual rows, q-error, elapsed time,
//! partition counts, cache provenance — packaged for rendering.
//!
//! A [`QueryProfile`] is derived from whichever [`Report`] an
//! instrumented [`crate::Query::run`] produced (requested via
//! [`crate::Instrument::Profile`]) and rendered two ways:
//!
//! * [`QueryProfile::render`] — the full report with wall-clock times;
//! * [`QueryProfile::render_stable`] — the same report with every
//!   timing masked (`-`), leaving only deterministic quantities, so
//!   golden tests can pin the format byte-for-byte.
//!
//! `sj-server` attaches the cache tier ([`QueryProfile::cache_tier`]):
//! a result-cache hit profiles as just the tier line (no plan ran), a
//! plan-cache hit or cold run carries the full node table.

use crate::engine::Report;
use crate::plan::Q_ERROR_BUDGET;
use std::time::Duration;

/// One plan (or tree) node of a [`QueryProfile`].
#[derive(Debug, Clone)]
pub struct ProfileNode {
    /// Node id (plan-DAG topological id, or pre-order tree index for
    /// naive reports).
    pub id: usize,
    /// Physical operator (`hash-join`, `scan`, …).
    pub operator: String,
    /// Expression label.
    pub label: String,
    /// Output arity.
    pub arity: usize,
    /// Actual output cardinality.
    pub actual: usize,
    /// Estimated output cardinality, when the plan was costed.
    pub estimate: Option<f64>,
    /// `max(est/actual, actual/est)`, both clamped to ≥ 1 row.
    pub q_error: Option<f64>,
    /// Wall-clock self time of this node's operator.
    pub elapsed: Duration,
    /// Partitions the node ran with (0 = serial).
    pub partitions: usize,
    /// Logical tree nodes this DAG node served (memoization sharing;
    /// 1 for naive reports).
    pub occurrences: usize,
}

/// The per-node breakdown of one instrumented query.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Per-node rows, root last.
    pub nodes: Vec<ProfileNode>,
    /// Rows the query returned.
    pub output_rows: usize,
    /// Input database size `|D|`.
    pub db_size: usize,
    /// Worker threads the executor ran with.
    pub workers: usize,
    /// End-to-end wall time, when the engine recorded it.
    pub elapsed: Option<Duration>,
    /// Which serving tier produced the result (`cold`, `plan-cache`,
    /// `result-cache`); `None` outside the server.
    pub cache_tier: Option<String>,
}

impl QueryProfile {
    /// Build a profile from an instrumented run's report.
    pub fn from_report(report: &Report, elapsed: Option<Duration>) -> QueryProfile {
        let nodes = match report {
            Report::Planned(r) => r
                .nodes
                .iter()
                .zip(&r.occurrences)
                .zip(&r.estimates)
                .map(|((n, &occ), est)| ProfileNode {
                    id: n.id,
                    operator: n.operator.clone(),
                    label: n.label.clone(),
                    arity: n.arity,
                    actual: n.cardinality,
                    estimate: *est,
                    q_error: r.q_error(n.id),
                    elapsed: n.elapsed,
                    partitions: n.partitions.len(),
                    occurrences: occ,
                })
                .collect(),
            Report::Naive(r) => r
                .nodes
                .iter()
                .map(|n| ProfileNode {
                    id: n.id,
                    operator: n.operator.clone(),
                    label: n.label.clone(),
                    arity: n.arity,
                    actual: n.cardinality,
                    estimate: None,
                    q_error: None,
                    elapsed: n.elapsed,
                    partitions: n.partitions.len(),
                    occurrences: 1,
                })
                .collect(),
        };
        let workers = match report {
            Report::Planned(r) => r.workers,
            Report::Naive(_) => 1,
        };
        QueryProfile {
            nodes,
            output_rows: report.result().len(),
            db_size: report.db_size(),
            workers,
            elapsed,
            cache_tier: None,
        }
    }

    /// A tier-only profile for serving tiers that ran no plan (a
    /// result-cache hit returns rows without executing anything).
    pub fn cache_hit(
        tier: impl Into<String>,
        output_rows: usize,
        elapsed: Duration,
    ) -> QueryProfile {
        QueryProfile {
            nodes: Vec::new(),
            output_rows,
            db_size: 0,
            workers: 0,
            elapsed: Some(elapsed),
            cache_tier: Some(tier.into()),
        }
    }

    /// Attach the serving tier that produced this result.
    pub fn with_cache_tier(mut self, tier: impl Into<String>) -> QueryProfile {
        self.cache_tier = Some(tier.into());
        self
    }

    /// The worst per-node q-error, when estimates are present.
    pub fn max_q_error(&self) -> Option<f64> {
        self.nodes
            .iter()
            .filter_map(|n| n.q_error)
            .fold(None, |acc, q| Some(acc.map_or(q, |a: f64| a.max(q))))
    }

    /// Render with wall-clock timings.
    pub fn render(&self) -> String {
        self.render_inner(true)
    }

    /// Render with every timing masked as `-`: byte-stable across runs
    /// of the same configuration, so golden tests can pin it.
    pub fn render_stable(&self) -> String {
        self.render_inner(false)
    }

    fn render_inner(&self, timed: bool) -> String {
        let fmt_us = |d: Duration| format!("{:.1}µs", d.as_nanos() as f64 / 1_000.0);
        let elapsed = match (timed, self.elapsed) {
            (true, Some(d)) => format!(", elapsed {}", fmt_us(d)),
            (true, None) => String::new(),
            (false, _) => ", elapsed -".to_string(),
        };
        let tier = match &self.cache_tier {
            Some(t) => format!(", tier {t}"),
            None => String::new(),
        };
        let mut out = format!(
            "profile: |D| = {}, output = {} rows, {} nodes, {} workers{tier}{elapsed}\n",
            self.db_size,
            self.output_rows,
            self.nodes.len(),
            self.workers,
        );
        for n in &self.nodes {
            let est = match (n.estimate, n.q_error) {
                (Some(e), Some(q)) if q > Q_ERROR_BUDGET => {
                    format!("  est≈{e:.0} q-error {q:.1} (over budget)")
                }
                (Some(e), Some(q)) => format!("  est≈{e:.0} q-error {q:.1}"),
                _ => String::new(),
            };
            let parts = if n.partitions == 0 {
                "[serial]".to_string()
            } else {
                format!("[{} partitions]", n.partitions)
            };
            let t = if timed {
                fmt_us(n.elapsed)
            } else {
                "-".to_string()
            };
            out.push_str(&format!(
                "  [{:>3}] {:<20} {:<28} arity {}  rows {}{est}  ×{}  {parts}  {t}\n",
                n.id, n.operator, n.label, n.arity, n.actual, n.occurrences
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, Instrument, StatsMode, Strategy};
    use sj_algebra::division;
    use sj_storage::{Database, Relation};

    fn division_db() -> Database {
        let mut db = Database::new();
        db.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[3, 8], &[3, 9]]),
        );
        db.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        db
    }

    #[test]
    fn profile_from_planned_report() {
        let engine = Engine::new(division_db())
            .strategy(Strategy::Planned)
            .stats(StatsMode::Analyze)
            .instrument(Instrument::Profile);
        let out = engine
            .query(division::division_double_difference("R", "S"))
            .run()
            .unwrap();
        let profile = out.profile().expect("Profile instrument ⇒ profile");
        assert_eq!(profile.output_rows, out.relation.len());
        assert!(!profile.nodes.is_empty());
        assert!(profile.nodes.iter().any(|n| n.estimate.is_some()));
        assert!(profile.max_q_error().is_some());
        assert!(out.elapsed.is_some(), "Profile implies timing");
        let rendered = profile.render();
        assert!(rendered.contains("µs"), "{rendered}");
        let stable = profile.render_stable();
        assert!(!stable.contains("µs"), "{stable}");
        assert!(stable.contains("est≈"), "{stable}");
        assert!(stable.contains("[serial]"), "{stable}");
        // Stable rendering is deterministic across repeated runs.
        let again = engine
            .query(division::division_double_difference("R", "S"))
            .run()
            .unwrap();
        assert_eq!(stable, again.profile().unwrap().render_stable());
    }

    #[test]
    fn cache_hit_profile_is_tier_only() {
        let p = QueryProfile::cache_hit("result-cache", 42, Duration::from_micros(3));
        assert!(p.nodes.is_empty());
        let s = p.render_stable();
        assert!(s.contains("tier result-cache"), "{s}");
        assert!(s.contains("output = 42 rows"), "{s}");
    }
}
