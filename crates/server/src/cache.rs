//! The bucketed expression cache underlying both serving cache tiers.
//!
//! Entries are keyed by [`Expr::structural_hash`] and confirmed with a
//! **full-expression equality check**: two distinct expressions that
//! land in one hash bucket coexist as separate slots, so a hash
//! collision degrades to an ordinary miss — it can never surface a
//! wrong entry. The hash function is pluggable
//! ([`ExprCache::with_hasher`]) precisely so tests can force every
//! expression into a single bucket and pin that property.
//!
//! Eviction is least-recently-used: when the cache is at capacity, the
//! slot with the oldest access tick makes room. The scan is linear in
//! the entry count, which is bounded by the (small) configured
//! capacity.

use sj_algebra::Expr;
use sj_storage::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The keying function: maps an expression to its bucket.
pub type ExprHashFn = fn(&Expr) -> u64;

fn structural_hash(expr: &Expr) -> u64 {
    expr.structural_hash()
}

struct Slot<V> {
    expr: Expr,
    value: V,
    last_used: u64,
}

/// A thread-safe expression-keyed cache (see the module docs). `V` is
/// the cached payload: a plan entry for the plan tier, a result entry
/// for the result tier.
pub struct ExprCache<V> {
    buckets: Mutex<FxHashMap<u64, Vec<Slot<V>>>>,
    hasher: ExprHashFn,
    capacity: usize,
    tick: AtomicU64,
}

impl<V: Clone> ExprCache<V> {
    /// A cache holding at most `capacity` entries, keyed by
    /// [`Expr::structural_hash`].
    pub fn new(capacity: usize) -> ExprCache<V> {
        ExprCache::with_hasher(capacity, structural_hash)
    }

    /// A cache with a custom bucket function — the test hook for
    /// forcing hash collisions (e.g. `|_| 0` puts every expression in
    /// one bucket).
    pub fn with_hasher(capacity: usize, hasher: ExprHashFn) -> ExprCache<V> {
        ExprCache {
            buckets: Mutex::new(FxHashMap::default()),
            hasher,
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
        }
    }

    /// The cached value for `expr`, if present. A bucket hit is
    /// confirmed by full `Expr` equality before anything is returned.
    pub fn get(&self, expr: &Expr) -> Option<V> {
        let hash = (self.hasher)(expr);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut buckets = self.buckets.lock().expect("cache poisoned");
        let slot = buckets
            .get_mut(&hash)?
            .iter_mut()
            .find(|s| &s.expr == expr)?;
        slot.last_used = tick;
        Some(slot.value.clone())
    }

    /// Insert (or replace) the entry for `expr`, evicting the
    /// least-recently-used slot when at capacity.
    pub fn insert(&self, expr: Expr, value: V) {
        let hash = (self.hasher)(&expr);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut buckets = self.buckets.lock().expect("cache poisoned");
        if let Some(slot) = buckets
            .get_mut(&hash)
            .and_then(|b| b.iter_mut().find(|s| s.expr == expr))
        {
            slot.value = value;
            slot.last_used = tick;
            return;
        }
        let len: usize = buckets.values().map(Vec::len).sum();
        if len >= self.capacity {
            // Evict the least-recently-used slot across all buckets.
            if let Some((&h, _)) = buckets
                .iter()
                .filter(|(_, b)| !b.is_empty())
                .min_by_key(|(_, b)| b.iter().map(|s| s.last_used).min().unwrap_or(u64::MAX))
            {
                let bucket = buckets.get_mut(&h).expect("bucket exists");
                let oldest = bucket
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.last_used)
                    .map(|(i, _)| i)
                    .expect("non-empty bucket");
                bucket.swap_remove(oldest);
                if bucket.is_empty() {
                    buckets.remove(&h);
                }
            }
        }
        buckets.entry(hash).or_default().push(Slot {
            expr,
            value,
            last_used: tick,
        });
    }

    /// Drop every entry for which `keep` returns false — the eager
    /// per-relation invalidation sweep.
    pub fn retain(&self, mut keep: impl FnMut(&Expr, &V) -> bool) {
        let mut buckets = self.buckets.lock().expect("cache poisoned");
        for bucket in buckets.values_mut() {
            bucket.retain(|s| keep(&s.expr, &s.value));
        }
        buckets.retain(|_, b| !b.is_empty());
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.buckets
            .lock()
            .expect("cache poisoned")
            .values()
            .map(Vec::len)
            .sum()
    }

    /// True iff the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.buckets.lock().expect("cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exprs() -> (Expr, Expr, Expr) {
        (
            Expr::rel("R").project([1]),
            Expr::rel("S").project([2]),
            Expr::rel("T"),
        )
    }

    #[test]
    fn hit_requires_full_equality() {
        let cache: ExprCache<i32> = ExprCache::new(8);
        let (a, b, c) = exprs();
        cache.insert(a.clone(), 1);
        assert_eq!(cache.get(&a), Some(1));
        assert_eq!(cache.get(&b), None);
        assert_eq!(cache.get(&c), None);
    }

    /// The regression pinned by the hardening satellite: two distinct
    /// expressions forced into one bucket must behave exactly like two
    /// entries under different hashes — never cross-contaminate, never
    /// produce each other's values. A genuine `structural_hash`
    /// collision therefore degrades to a miss, not a wrong result.
    #[test]
    fn forced_hash_collisions_degrade_to_misses_never_wrong_entries() {
        let cache: ExprCache<&str> = ExprCache::with_hasher(8, |_| 42);
        let (a, b, c) = exprs();
        cache.insert(a.clone(), "a-result");
        cache.insert(b.clone(), "b-result");
        // Same bucket, disambiguated by full equality.
        assert_eq!(cache.get(&a), Some("a-result"));
        assert_eq!(cache.get(&b), Some("b-result"));
        // A third expression hashing into the same bucket is a miss.
        assert_eq!(cache.get(&c), None);
        // Replacement targets exactly the equal expression.
        cache.insert(a.clone(), "a-new");
        assert_eq!(cache.get(&a), Some("a-new"));
        assert_eq!(cache.get(&b), Some("b-result"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache: ExprCache<i32> = ExprCache::new(2);
        let (a, b, c) = exprs();
        cache.insert(a.clone(), 1);
        cache.insert(b.clone(), 2);
        // Touch `a` so `b` is the least recently used.
        assert_eq!(cache.get(&a), Some(1));
        cache.insert(c.clone(), 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&a), Some(1), "recently used survives");
        assert_eq!(cache.get(&b), None, "LRU slot evicted");
        assert_eq!(cache.get(&c), Some(3));
    }

    #[test]
    fn retain_sweeps_matching_entries() {
        let cache: ExprCache<i32> = ExprCache::with_hasher(8, |_| 7);
        let (a, b, c) = exprs();
        cache.insert(a.clone(), 1);
        cache.insert(b.clone(), 2);
        cache.insert(c.clone(), 3);
        cache.retain(|_, &v| v != 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&b), None);
        assert_eq!(cache.get(&a), Some(1));
        cache.clear();
        assert!(cache.is_empty());
    }
}
