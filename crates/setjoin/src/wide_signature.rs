//! Configurable-width Bloom signatures for set joins.
//!
//! The 64-bit signatures in [`crate::setjoin`] saturate once sets exceed a
//! few dozen elements, killing the filter's selectivity (visible in the
//! Zipf benchmark). This module generalizes to `W × 64` bits, the knob
//! studied by Helmer & Moerkotte (VLDB 1997 — reference \[13\] of the
//! paper): wider signatures trade memory and per-pair AND cost for a lower
//! false-positive rate.

use crate::setjoin::{group_sets, SetPredicate};
use sj_storage::hash::fx_hash_one;
use sj_storage::{Relation, Tuple, Value};

/// A multi-word Bloom signature.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WideSignature {
    words: Vec<u64>,
}

impl WideSignature {
    /// Signature of a value list with `words × 64` bits.
    pub fn of(values: &[Value], words: usize) -> Self {
        assert!(words > 0);
        let bits = (words * 64) as u64;
        let mut w = vec![0u64; words];
        for v in values {
            let bit = fx_hash_one(v) % bits;
            w[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        WideSignature { words: w }
    }

    /// Is every bit of `self` also set in `other`? (Necessary condition
    /// for the underlying set inclusion.)
    pub fn subset_of(&self, other: &WideSignature) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Do the signatures share a bit? (Necessary for nonempty
    /// intersection.)
    pub fn intersects(&self, other: &WideSignature) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of set bits.
    pub fn popcount(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Width in words.
    pub fn width(&self) -> usize {
        self.words.len()
    }
}

/// Signature-filtered set join with a configurable signature width
/// (`words × 64` bits). Semantically identical to
/// [`crate::setjoin::signature_set_join`]; the width only changes how many
/// pairs reach the exact verification.
pub fn wide_signature_set_join(
    r: &Relation,
    s: &Relation,
    pred: SetPredicate,
    words: usize,
) -> Relation {
    let rg = group_sets(r);
    let sg = group_sets(s);
    let rsig: Vec<WideSignature> = rg
        .iter()
        .map(|(_, vs)| WideSignature::of(vs, words))
        .collect();
    let ssig: Vec<WideSignature> = sg
        .iter()
        .map(|(_, vs)| WideSignature::of(vs, words))
        .collect();
    let mut out: Vec<Tuple> = Vec::new();
    for ((a, b_set), sb) in rg.iter().zip(&rsig) {
        for ((c, d_set), sd) in sg.iter().zip(&ssig) {
            let may = match pred {
                SetPredicate::Contains => sd.subset_of(sb),
                SetPredicate::ContainedIn => sb.subset_of(sd),
                SetPredicate::Equals => sb == sd,
                SetPredicate::IntersectsNonempty => sb.intersects(sd) || b_set.is_empty(),
            };
            if may && crate::setjoin::predicate_holds_public(pred, b_set, d_set) {
                out.push(Tuple::new(vec![a.clone(), c.clone()]));
            }
        }
    }
    Relation::from_tuples(2, out).expect("binary output")
}

/// Count how many candidate pairs survive the signature filter (before
/// exact verification) — the measurement behind the width-ablation
/// experiment: larger `words` ⇒ fewer false positives.
pub fn filter_survivors(r: &Relation, s: &Relation, pred: SetPredicate, words: usize) -> usize {
    let rg = group_sets(r);
    let sg = group_sets(s);
    let rsig: Vec<WideSignature> = rg
        .iter()
        .map(|(_, vs)| WideSignature::of(vs, words))
        .collect();
    let ssig: Vec<WideSignature> = sg
        .iter()
        .map(|(_, vs)| WideSignature::of(vs, words))
        .collect();
    let mut survivors = 0usize;
    for ((_, b_set), sb) in rg.iter().zip(&rsig) {
        for (_, sd) in sg.iter().zip(&ssig).map(|((_, d), sig)| (d, sig)) {
            let may = match pred {
                SetPredicate::Contains => sd.subset_of(sb),
                SetPredicate::ContainedIn => sb.subset_of(sd),
                SetPredicate::Equals => *sb == *sd,
                SetPredicate::IntersectsNonempty => sb.intersects(sd) || b_set.is_empty(),
            };
            if may {
                survivors += 1;
            }
        }
    }
    survivors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setjoin::nested_loop_set_join;
    use sj_workload_free_random::relation_of_sets;

    /// Tiny local generator (no dependency on sj-workload to avoid a
    /// cycle): `groups` sets of `size` elements drawn from `domain` with a
    /// simple LCG.
    mod sj_workload_free_random {
        use sj_storage::{Relation, Tuple};

        pub fn relation_of_sets(groups: i64, size: i64, domain: i64, mut seed: u64) -> Relation {
            let mut rows = Vec::new();
            for g in 0..groups {
                for k in 0..size {
                    seed = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let e = (seed >> 33) as i64 % domain;
                    rows.push(Tuple::from_ints(&[g, 10_000 + (e + k) % domain]));
                }
            }
            Relation::from_tuples(2, rows).unwrap()
        }
    }

    #[test]
    fn equals_nested_loop_for_all_widths() {
        let r = relation_of_sets(20, 6, 40, 1);
        let s = relation_of_sets(15, 5, 40, 2);
        for pred in [
            SetPredicate::Contains,
            SetPredicate::ContainedIn,
            SetPredicate::Equals,
            SetPredicate::IntersectsNonempty,
        ] {
            let want = nested_loop_set_join(&r, &s, pred);
            for words in [1usize, 2, 4] {
                assert_eq!(
                    wide_signature_set_join(&r, &s, pred, words),
                    want,
                    "{pred:?} at width {words}"
                );
            }
        }
    }

    #[test]
    fn wider_signatures_filter_no_worse() {
        // Survivor count is monotonically non-increasing in width on the
        // same workload (more bits ⇒ fewer collisions ⇒ fewer false
        // positives), and always ≥ the true result size.
        let r = relation_of_sets(40, 8, 64, 3);
        let s = relation_of_sets(40, 6, 64, 4);
        let truth = nested_loop_set_join(&r, &s, SetPredicate::Contains).len();
        let mut last = usize::MAX;
        for words in [1usize, 2, 4, 8] {
            let surv = filter_survivors(&r, &s, SetPredicate::Contains, words);
            assert!(surv >= truth, "filter lost true pairs");
            assert!(
                surv <= last,
                "width {words} filtered worse: {surv} > {last}"
            );
            last = surv;
        }
    }

    #[test]
    fn signature_basics() {
        let a = WideSignature::of(&[Value::int(1), Value::int(2)], 2);
        let b = WideSignature::of(&[Value::int(1), Value::int(2), Value::int(3)], 2);
        assert!(a.subset_of(&b));
        assert!(a.intersects(&b));
        assert!(a.popcount() <= 2);
        assert_eq!(a.width(), 2);
        let empty = WideSignature::of(&[], 2);
        assert!(empty.subset_of(&a));
        assert!(!empty.intersects(&a));
        assert_eq!(empty.popcount(), 0);
    }
}
