//! The paper's Fig. 1 scenario: diagnosing patients by set-containment
//! join, end to end — exactly the tables printed in the paper.
//!
//! ```bash
//! cargo run --example medical_diagnosis
//! ```

use setjoins::prelude::*;
use sj_storage::display::render_relation;
use sj_workload::figures;

fn main() {
    let db = figures::fig1();
    let person = db.get("Person").unwrap();
    let disease = db.get("Disease").unwrap();
    let symptoms = db.get("Symptoms").unwrap();

    println!("== Fig. 1 of Leinders & Van den Bussche ==\n");
    println!(
        "{}",
        render_relation(person, "Person", &["pName", "Symptom"])
    );
    println!(
        "{}",
        render_relation(disease, "Disease", &["dName", "Symptom"])
    );
    println!("{}", render_relation(symptoms, "Symptoms", &["Symptom"]));

    // Set-containment join: which persons show ALL symptoms of which
    // disease?
    let diagnosis = set_join(person, disease, SetPredicate::Contains);
    println!(
        "{}",
        render_relation(
            &diagnosis,
            "Person ⋈[Person.Symptom ⊇ Disease.Symptom] Disease",
            &["pName", "dName"]
        )
    );
    assert_eq!(diagnosis, figures::fig1_expected_join());

    // Division: who has every symptom in the Symptoms checklist?
    let quotient = divide(person, symptoms, DivisionSemantics::Containment);
    println!(
        "{}",
        render_relation(&quotient, "Person ÷ Symptoms", &["pName"])
    );
    assert_eq!(quotient, figures::fig1_expected_division());

    // Compare algorithm families on a scaled-up version of the same
    // workload.
    println!("== scaled workload: 2,000 patients, 12-symptom checklist ==\n");
    let w = sj_workload::DivisionWorkload {
        groups: 2_000,
        divisor_size: 12,
        containment_fraction: 0.02,
        extra_per_group: 6,
        noise_domain: 500,
        seed: 20_260_613,
    };
    let (r, s, expected) = w.generate();
    for (name, alg) in sj_setjoin::division::all_algorithms() {
        let start = std::time::Instant::now();
        let out = alg(&r, &s, DivisionSemantics::Containment);
        let took = start.elapsed();
        assert_eq!(out, expected);
        println!(
            "  {name:<12} {:>8.1?}  → {} qualifying patients",
            took,
            out.len()
        );
    }
    println!(
        "\n(The paper proves why the nested-loop pattern — the only one \
         plain RA can express — must fall behind.)"
    );
}
