//! Columnar view of a relation: typed per-column vectors, a per-relation
//! string dictionary, and chunked slices for vectorized execution.
//!
//! The row representation ([`crate::Relation`]'s sorted `Vec<Tuple>`) stays
//! the *canonical* one — it is what equality, ordering, and the set
//! operators are defined on. The types here are a derived, cache-friendly
//! projection of the same data:
//!
//! * [`ColumnData`] — one column as a dense typed vector. A column whose
//!   cells are all integers becomes `Int(Vec<i64>)`; an all-string column
//!   is dictionary-encoded as `Str(Vec<u32>)` with codes into the
//!   relation's [`StrDict`]; a column mixing variants (legal, since the
//!   universe `U` is the union of integers and strings) falls back to
//!   `Mixed(Vec<Value>)`.
//! * [`StrDict`] — the per-relation dictionary: all distinct strings of
//!   the dictionary-encoded columns, **sorted lexicographically**, so
//!   comparing two codes from the *same* dictionary is exactly comparing
//!   the strings. Each entry also carries a precomputed value hash so
//!   hashing a string cell is a table lookup.
//! * [`Columns`] — the full columnar image of one relation: row count,
//!   one [`ColumnData`] per column, and the shared dictionary.
//! * [`Chunk`] — a view over a row range of a [`Columns`] (default
//!   [`DEFAULT_CHUNK_ROWS`] rows), yielding per-column slices
//!   ([`ColSlice`]) that the vectorized operators in `sj-eval` scan.
//! * [`ColsView`] — a zero-copy *gather* view over an arbitrary ascending
//!   row-index list (typically one partition of
//!   `Relation::partition_indices`), yielding per-column gather slices
//!   ([`ColGather`]) so the partition-parallel kernels can run the same
//!   typed column loops as the chunked serial ones without materializing
//!   per-partition relations.
//!
//! Cells are hashed with [`Columns::cell_hash`], which depends only on the
//! cell's *value* — an integer hashes the same whether it sits in an
//! `Int` or a `Mixed` column, and a string hashes the same under any
//! dictionary — so hashes computed on two different relations can be used
//! to pair up build and probe sides of a hash join. Hash equality is never
//! trusted on its own; the operators confirm with [`Columns::cell_eq`].

use crate::hash::fx_hash_one;
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::Arc;

/// Default number of rows per [`Chunk`] produced by [`Columns::chunks`].
pub const DEFAULT_CHUNK_ROWS: usize = 2048;

/// Hash of an integer cell. SplitMix64 finalizer — one multiply-xor-shift
/// pipeline per value, no `Hasher` state to thread through a dense loop.
#[inline]
pub fn hash_int_cell(v: i64) -> u64 {
    let mut z = (v as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash of a string cell. Dictionary entries precompute this once per
/// distinct string ([`StrDict::hash_of`]), so per-row hashing of an
/// encoded column is a table lookup instead of a byte scan.
#[inline]
pub fn hash_str_cell(s: &str) -> u64 {
    // XOR with a constant so `Str("")` and `Int(hash-seed)` cannot agree
    // by construction; collisions are harmless (verified) but cheap to
    // avoid for the common empty/small cases.
    fx_hash_one(&s) ^ 0xc2b2_ae3d_27d4_eb4f
}

/// Hash of an arbitrary [`Value`] cell, consistent with
/// [`hash_int_cell`] / [`hash_str_cell`]. Used for `Mixed` columns.
#[inline]
pub fn hash_value_cell(v: &Value) -> u64 {
    match v {
        Value::Int(i) => hash_int_cell(*i),
        Value::Str(s) => hash_str_cell(s),
    }
}

/// A per-relation string dictionary: the distinct strings of all
/// dictionary-encoded columns, sorted lexicographically.
///
/// Codes are indices into the sorted list, so **code order equals string
/// order** within one dictionary. Codes from different dictionaries are
/// not comparable; [`StrDict::translate_from`] builds the cross-dictionary
/// code map the merge operators use.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct StrDict {
    strings: Vec<Arc<str>>,
    hashes: Vec<u64>,
}

impl StrDict {
    /// Build a dictionary from an iterator of strings (cloned `Arc`s;
    /// duplicates welcome — the result is sorted and deduplicated).
    pub fn from_strings(strings: impl IntoIterator<Item = Arc<str>>) -> Self {
        let mut v: Vec<Arc<str>> = strings.into_iter().collect();
        v.sort_unstable_by(|a, b| a.as_ref().cmp(b.as_ref()));
        v.dedup_by(|a, b| a.as_ref() == b.as_ref());
        let hashes = v.iter().map(|s| hash_str_cell(s)).collect();
        StrDict { strings: v, hashes }
    }

    /// Number of distinct strings.
    #[inline]
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True iff the dictionary is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The string for a code.
    #[inline]
    pub fn get(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }

    /// The precomputed cell hash for a code.
    #[inline]
    pub fn hash_of(&self, code: u32) -> u64 {
        self.hashes[code as usize]
    }

    /// The code for a string, if present (binary search over the sorted
    /// entries).
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.strings
            .binary_search_by(|e| e.as_ref().cmp(s))
            .ok()
            .map(|i| i as u32)
    }

    /// All entries in code (= lexicographic) order.
    #[inline]
    pub fn strings(&self) -> &[Arc<str>] {
        &self.strings
    }

    /// For every code of `other`, the equal string's code in `self` (or
    /// `None` when `self` lacks the string). A single linear merge of the
    /// two sorted entry lists — the cross-dictionary comparison table the
    /// columnar set-join verification uses.
    pub fn translate_from(&self, other: &StrDict) -> Vec<Option<u32>> {
        let mut map = vec![None; other.len()];
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.strings.len() && j < other.strings.len() {
            match self.strings[i].as_ref().cmp(other.strings[j].as_ref()) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => {
                    map[j] = Some(i as u32);
                    i += 1;
                    j += 1;
                }
            }
        }
        map
    }
}

/// One column of a relation as a dense typed vector.
#[derive(Debug)]
pub enum ColumnData {
    /// Every cell is an integer.
    Int(Vec<i64>),
    /// Every cell is a string; values are codes into the relation's
    /// [`StrDict`].
    Str(Vec<u32>),
    /// Cells mix integers and strings — stored as plain values.
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Number of rows in the column.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// True iff the column has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The integer vector, if this is an `Int` column.
    #[inline]
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            ColumnData::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The code vector, if this is a dictionary-encoded `Str` column.
    #[inline]
    pub fn as_codes(&self) -> Option<&[u32]> {
        match self {
            ColumnData::Str(v) => Some(v),
            _ => None,
        }
    }
}

/// A borrowed slice of one column over a row range — what a [`Chunk`]
/// hands to the vectorized operators.
#[derive(Debug, Clone, Copy)]
pub enum ColSlice<'a> {
    /// Dense integers.
    Int(&'a [i64]),
    /// Dictionary codes plus the dictionary they decode through.
    Str {
        /// Codes for the rows in the slice.
        codes: &'a [u32],
        /// The owning relation's dictionary.
        dict: &'a StrDict,
    },
    /// Plain values (mixed-variant column).
    Mixed(&'a [Value]),
}

impl ColSlice<'_> {
    /// Number of rows in the slice.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ColSlice::Int(v) => v.len(),
            ColSlice::Str { codes, .. } => codes.len(),
            ColSlice::Mixed(v) => v.len(),
        }
    }

    /// True iff the slice has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize the value at slice-local row `i`.
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColSlice::Int(v) => Value::Int(v[i]),
            ColSlice::Str { codes, dict } => Value::Str(Arc::clone(dict.get(codes[i]))),
            ColSlice::Mixed(v) => v[i].clone(),
        }
    }
}

/// The columnar image of one relation: `len` rows, one [`ColumnData`] per
/// column, and the shared string dictionary.
///
/// Row `i` of the columns is exactly tuple `i` of the canonical sorted
/// tuple vector it was built from, so a sorted run of rows here is a
/// sorted run of tuples there.
#[derive(Debug)]
pub struct Columns {
    len: usize,
    cols: Vec<ColumnData>,
    dict: Arc<StrDict>,
}

impl Columns {
    /// Build the columnar image of `tuples` (all of the given arity, in
    /// any order — callers pass a [`crate::Relation`]'s canonical vector).
    ///
    /// Per column: all-integer cells become `Int`, all-string cells are
    /// dictionary-encoded as `Str` against one relation-wide dictionary,
    /// anything else falls back to `Mixed`.
    pub fn from_tuples(arity: usize, tuples: &[Tuple]) -> Self {
        let len = tuples.len();
        // Pass 1: classify each column.
        #[derive(Clone, Copy, PartialEq)]
        enum Kind {
            Int,
            Str,
            Mixed,
        }
        let mut kinds = vec![Kind::Int; arity];
        for (c, kind) in kinds.iter_mut().enumerate() {
            let mut ints = 0usize;
            let mut strs = 0usize;
            for t in tuples {
                match &t[c] {
                    Value::Int(_) => ints += 1,
                    Value::Str(_) => strs += 1,
                }
            }
            *kind = if strs == 0 {
                Kind::Int
            } else if ints == 0 {
                Kind::Str
            } else {
                Kind::Mixed
            };
        }
        // Pass 2: one dictionary over all string columns.
        let dict = StrDict::from_strings(
            kinds
                .iter()
                .enumerate()
                .filter(|(_, k)| **k == Kind::Str)
                .flat_map(|(c, _)| {
                    tuples.iter().map(move |t| match &t[c] {
                        Value::Str(s) => Arc::clone(s),
                        Value::Int(_) => unreachable!("classified as Str"),
                    })
                }),
        );
        // Pass 3: materialize the typed vectors.
        let cols = kinds
            .iter()
            .enumerate()
            .map(|(c, k)| match k {
                Kind::Int => ColumnData::Int(
                    tuples
                        .iter()
                        .map(|t| match &t[c] {
                            Value::Int(v) => *v,
                            Value::Str(_) => unreachable!("classified as Int"),
                        })
                        .collect(),
                ),
                Kind::Str => ColumnData::Str(
                    tuples
                        .iter()
                        .map(|t| match &t[c] {
                            Value::Str(s) => dict.code_of(s).expect("string is in the dictionary"),
                            Value::Int(_) => unreachable!("classified as Str"),
                        })
                        .collect(),
                ),
                Kind::Mixed => ColumnData::Mixed(tuples.iter().map(|t| t[c].clone()).collect()),
            })
            .collect();
        Columns {
            len,
            cols,
            dict: Arc::new(dict),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The data of column `c` (0-based).
    #[inline]
    pub fn col(&self, c: usize) -> &ColumnData {
        &self.cols[c]
    }

    /// The shared string dictionary.
    #[inline]
    pub fn dict(&self) -> &Arc<StrDict> {
        &self.dict
    }

    /// A [`ColSlice`] over rows `start..start + rows` of column `c`.
    #[inline]
    pub fn slice(&self, c: usize, start: usize, rows: usize) -> ColSlice<'_> {
        match &self.cols[c] {
            ColumnData::Int(v) => ColSlice::Int(&v[start..start + rows]),
            ColumnData::Str(v) => ColSlice::Str {
                codes: &v[start..start + rows],
                dict: &self.dict,
            },
            ColumnData::Mixed(v) => ColSlice::Mixed(&v[start..start + rows]),
        }
    }

    /// Materialize the value at `(column c, row r)`.
    #[inline]
    pub fn value_at(&self, c: usize, r: usize) -> Value {
        match &self.cols[c] {
            ColumnData::Int(v) => Value::Int(v[r]),
            ColumnData::Str(v) => Value::Str(Arc::clone(self.dict.get(v[r]))),
            ColumnData::Mixed(v) => v[r].clone(),
        }
    }

    /// Value-based hash of the cell at `(c, r)` — consistent across
    /// relations and column representations (see module docs).
    #[inline]
    pub fn cell_hash(&self, c: usize, r: usize) -> u64 {
        match &self.cols[c] {
            ColumnData::Int(v) => hash_int_cell(v[r]),
            ColumnData::Str(v) => self.dict.hash_of(v[r]),
            ColumnData::Mixed(v) => hash_value_cell(&v[r]),
        }
    }

    /// Exact value equality between cell `(c, r)` of `self` and cell
    /// `(oc, or_)` of `other` — the collision check behind hash-paired
    /// rows. Cross-dictionary string cells compare by string content.
    pub fn cell_eq(&self, c: usize, r: usize, other: &Columns, oc: usize, or_: usize) -> bool {
        use ColumnData::*;
        match (&self.cols[c], &other.cols[oc]) {
            (Int(a), Int(b)) => a[r] == b[or_],
            (Str(a), Str(b)) => {
                if Arc::ptr_eq(&self.dict, &other.dict) {
                    a[r] == b[or_]
                } else {
                    self.dict.get(a[r]).as_ref() == other.dict.get(b[or_]).as_ref()
                }
            }
            (Int(_), Str(_)) | (Str(_), Int(_)) => false,
            (Int(a), Mixed(b)) => matches!(&b[or_], Value::Int(v) if *v == a[r]),
            (Mixed(a), Int(b)) => matches!(&a[r], Value::Int(v) if *v == b[or_]),
            (Str(a), Mixed(b)) => {
                matches!(&b[or_], Value::Str(s) if s.as_ref() == self.dict.get(a[r]).as_ref())
            }
            (Mixed(a), Str(b)) => {
                matches!(&a[r], Value::Str(s) if s.as_ref() == other.dict.get(b[or_]).as_ref())
            }
            (Mixed(a), Mixed(b)) => a[r] == b[or_],
        }
    }

    /// Total order on cells across relations, matching [`Value`]'s order
    /// (all integers before all strings). Drives the columnar merge paths.
    pub fn cell_cmp(&self, c: usize, r: usize, other: &Columns, oc: usize, or_: usize) -> Ordering {
        use ColumnData::*;
        match (&self.cols[c], &other.cols[oc]) {
            (Int(a), Int(b)) => a[r].cmp(&b[or_]),
            (Str(a), Str(b)) => {
                if Arc::ptr_eq(&self.dict, &other.dict) {
                    a[r].cmp(&b[or_])
                } else {
                    self.dict
                        .get(a[r])
                        .as_ref()
                        .cmp(other.dict.get(b[or_]).as_ref())
                }
            }
            (Int(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) => Ordering::Greater,
            _ => self.value_at(c, r).cmp(&other.value_at(oc, or_)),
        }
    }

    /// Iterate [`Chunk`]s of at most `chunk_rows` rows (the last chunk may
    /// be shorter). `chunk_rows = 0` is treated as 1. An empty relation
    /// yields no chunks.
    pub fn chunks(&self, chunk_rows: usize) -> Chunks<'_> {
        Chunks {
            cols: self,
            next: 0,
            chunk_rows: chunk_rows.max(1),
        }
    }

    /// A zero-copy [`ColsView`] gathering the given row indices (e.g. one
    /// partition of `Relation::partition_indices`). Nothing is copied —
    /// the view borrows both the columns and the index list; row order is
    /// the index-list order. Indices must be in range.
    #[inline]
    pub fn view<'a>(&'a self, rows: &'a [u32]) -> ColsView<'a> {
        debug_assert!(rows.iter().all(|&i| (i as usize) < self.len));
        ColsView { cols: self, rows }
    }
}

/// Iterator over the [`Chunk`]s of a [`Columns`].
#[derive(Debug)]
pub struct Chunks<'a> {
    cols: &'a Columns,
    next: usize,
    chunk_rows: usize,
}

impl<'a> Iterator for Chunks<'a> {
    type Item = Chunk<'a>;

    fn next(&mut self) -> Option<Chunk<'a>> {
        if self.next >= self.cols.len() {
            return None;
        }
        let start = self.next;
        let rows = self.chunk_rows.min(self.cols.len() - start);
        self.next = start + rows;
        Some(Chunk {
            cols: self.cols,
            start,
            rows,
        })
    }
}

/// A view over a contiguous row range of a [`Columns`] — the unit of work
/// of the vectorized operators.
#[derive(Debug, Clone, Copy)]
pub struct Chunk<'a> {
    cols: &'a Columns,
    start: usize,
    rows: usize,
}

impl<'a> Chunk<'a> {
    /// Absolute index of the chunk's first row.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of rows in the chunk.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True iff the chunk has no rows (never produced by
    /// [`Columns::chunks`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The slice of column `c` covering this chunk's rows.
    #[inline]
    pub fn col(&self, c: usize) -> ColSlice<'a> {
        self.cols.slice(c, self.start, self.rows)
    }

    /// The owning [`Columns`].
    #[inline]
    pub fn columns(&self) -> &'a Columns {
        self.cols
    }
}

/// A zero-copy gather view over a [`Columns`]: the rows named by an
/// index list, in index-list order — the columnar image of one partition
/// of `Relation::partition_indices` without materializing any tuples.
///
/// Where a [`Chunk`] covers a *contiguous* row range, a `ColsView` covers
/// an arbitrary (ascending, for partitions) selection. Both hand the
/// vectorized operators dense typed columns; the view's columns carry the
/// indirection explicitly ([`ColGather`]) so the inner loops stay typed.
#[derive(Debug, Clone, Copy)]
pub struct ColsView<'a> {
    cols: &'a Columns,
    rows: &'a [u32],
}

impl<'a> ColsView<'a> {
    /// Number of rows in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the view selects no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of columns (the owner's arity).
    #[inline]
    pub fn arity(&self) -> usize {
        self.cols.arity()
    }

    /// The owning [`Columns`].
    #[inline]
    pub fn columns(&self) -> &'a Columns {
        self.cols
    }

    /// The gathered row indices, in view order.
    #[inline]
    pub fn rows(&self) -> &'a [u32] {
        self.rows
    }

    /// Absolute row index of view row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> usize {
        self.rows[i] as usize
    }

    /// The gather slice of column `c` over this view's rows.
    #[inline]
    pub fn col(&self, c: usize) -> ColGather<'a> {
        match self.cols.col(c) {
            ColumnData::Int(v) => ColGather::Int {
                vals: v,
                idx: self.rows,
            },
            ColumnData::Str(v) => ColGather::Str {
                codes: v,
                idx: self.rows,
                dict: self.cols.dict(),
            },
            ColumnData::Mixed(v) => ColGather::Mixed {
                vals: v,
                idx: self.rows,
            },
        }
    }

    /// Materialize the value at `(column c, view row i)`.
    #[inline]
    pub fn value_at(&self, c: usize, i: usize) -> Value {
        self.cols.value_at(c, self.row(i))
    }

    /// Value-based hash of cell `(c, view row i)` — identical to
    /// [`Columns::cell_hash`] on the underlying row.
    #[inline]
    pub fn cell_hash(&self, c: usize, i: usize) -> u64 {
        self.cols.cell_hash(c, self.row(i))
    }

    /// Exact value equality between cell `(c, i)` of `self` and cell
    /// `(oc, oi)` of `other`, both in view coordinates.
    #[inline]
    pub fn cell_eq(&self, c: usize, i: usize, other: &ColsView<'_>, oc: usize, oi: usize) -> bool {
        self.cols
            .cell_eq(c, self.row(i), other.cols, oc, other.row(oi))
    }

    /// Total order on cells across views, matching [`Columns::cell_cmp`].
    #[inline]
    pub fn cell_cmp(
        &self,
        c: usize,
        i: usize,
        other: &ColsView<'_>,
        oc: usize,
        oi: usize,
    ) -> Ordering {
        self.cols
            .cell_cmp(c, self.row(i), other.cols, oc, other.row(oi))
    }
}

/// One column of a [`ColsView`]: the owner's dense typed vector plus the
/// gather index list. The vectorized kernels match the variant once per
/// column and then run a tight `vals[idx[i]]` loop — the same shape as a
/// [`ColSlice`] loop with one extra indirection.
#[derive(Debug, Clone, Copy)]
pub enum ColGather<'a> {
    /// Dense integers gathered through `idx`.
    Int {
        /// The owner's full integer column.
        vals: &'a [i64],
        /// Row indices selected by the view.
        idx: &'a [u32],
    },
    /// Dictionary codes gathered through `idx`.
    Str {
        /// The owner's full code column.
        codes: &'a [u32],
        /// Row indices selected by the view.
        idx: &'a [u32],
        /// The owning relation's dictionary.
        dict: &'a StrDict,
    },
    /// Plain values gathered through `idx` (mixed-variant column).
    Mixed {
        /// The owner's full value column.
        vals: &'a [Value],
        /// Row indices selected by the view.
        idx: &'a [u32],
    },
}

impl ColGather<'_> {
    /// Number of rows in the gather slice.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            ColGather::Int { idx, .. }
            | ColGather::Str { idx, .. }
            | ColGather::Mixed { idx, .. } => idx.len(),
        }
    }

    /// True iff the slice selects no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell hash of view row `i`, consistent with [`Columns::cell_hash`].
    #[inline]
    pub fn hash(&self, i: usize) -> u64 {
        match self {
            ColGather::Int { vals, idx } => hash_int_cell(vals[idx[i] as usize]),
            ColGather::Str { codes, idx, dict } => dict.hash_of(codes[idx[i] as usize]),
            ColGather::Mixed { vals, idx } => hash_value_cell(&vals[idx[i] as usize]),
        }
    }

    /// Materialize the value at view row `i`.
    #[inline]
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColGather::Int { vals, idx } => Value::Int(vals[idx[i] as usize]),
            ColGather::Str { codes, idx, dict } => {
                Value::Str(Arc::clone(dict.get(codes[idx[i] as usize])))
            }
            ColGather::Mixed { vals, idx } => vals[idx[i] as usize].clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use crate::tuple;

    #[test]
    fn int_columns_are_dense() {
        let r = Relation::from_int_rows(&[&[1, 10], &[2, 20], &[3, 30]]);
        let c = r.columns();
        assert_eq!(c.len(), 3);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.col(0).as_ints(), Some(&[1i64, 2, 3][..]));
        assert_eq!(c.col(1).as_ints(), Some(&[10i64, 20, 30][..]));
        assert!(c.dict().is_empty());
    }

    #[test]
    fn str_columns_are_dictionary_encoded_in_order() {
        let r = Relation::from_str_rows(&[&["bob", "flu"], &["an", "flu"], &["an", "ague"]]);
        let c = r.columns();
        // Dictionary is sorted: code order == lexicographic order.
        let entries: Vec<&str> = c.dict().strings().iter().map(|s| s.as_ref()).collect();
        assert_eq!(entries, vec!["ague", "an", "bob", "flu"]);
        // Rows are the canonical tuple order: (an, ague), (an, flu), (bob, flu).
        assert_eq!(c.col(0).as_codes(), Some(&[1u32, 1, 2][..]));
        assert_eq!(c.col(1).as_codes(), Some(&[0u32, 3, 3][..]));
        assert_eq!(c.dict().code_of("bob"), Some(2));
        assert_eq!(c.dict().code_of("zeus"), None);
    }

    #[test]
    fn mixed_columns_fall_back_to_values() {
        let r = Relation::from_tuples(1, vec![tuple![1], tuple!["x"]]).unwrap();
        let c = r.columns();
        assert!(matches!(c.col(0), ColumnData::Mixed(_)));
        assert_eq!(c.value_at(0, 0), Value::int(1));
        assert_eq!(c.value_at(0, 1), Value::str("x"));
    }

    #[test]
    fn value_at_round_trips_every_cell() {
        let r =
            Relation::from_tuples(2, vec![tuple![1, "a"], tuple![2, "b"], tuple![3, "a"]]).unwrap();
        let c = r.columns();
        for (i, t) in r.iter().enumerate() {
            for j in 0..2 {
                assert_eq!(c.value_at(j, i), t[j]);
            }
        }
    }

    #[test]
    fn cell_hash_is_representation_independent() {
        // Same value in an Int column and a Mixed column.
        let dense = Relation::from_int_rows(&[&[7]]);
        let mixed = Relation::from_tuples(1, vec![tuple![7], tuple!["x"]]).unwrap();
        assert_eq!(
            dense.columns().cell_hash(0, 0),
            mixed.columns().cell_hash(0, 0)
        );
        // Same string under two different dictionaries.
        let a = Relation::from_str_rows(&[&["flu"], &["zzz"]]);
        let b = Relation::from_str_rows(&[&["ague"], &["flu"]]);
        assert_eq!(a.columns().cell_hash(0, 0), b.columns().cell_hash(0, 1));
    }

    #[test]
    fn cell_eq_and_cmp_across_representations() {
        let ints = Relation::from_int_rows(&[&[1], &[5]]);
        let strs = Relation::from_str_rows(&[&["a"], &["b"]]);
        let mixed = Relation::from_tuples(1, vec![tuple![5], tuple!["b"]]).unwrap();
        let (ic, sc, mc) = (ints.columns(), strs.columns(), mixed.columns());
        assert!(ic.cell_eq(0, 1, mc, 0, 0)); // 5 == 5 (Int vs Mixed)
        assert!(sc.cell_eq(0, 1, mc, 0, 1)); // "b" == "b" (Str vs Mixed)
        assert!(!ic.cell_eq(0, 0, sc, 0, 0)); // 1 != "a"
        assert_eq!(ic.cell_cmp(0, 0, sc, 0, 0), Ordering::Less); // ints < strings
        assert_eq!(sc.cell_cmp(0, 1, sc, 0, 0), Ordering::Greater);
        assert_eq!(mc.cell_cmp(0, 0, ic, 0, 1), Ordering::Equal);
    }

    #[test]
    fn translate_from_maps_codes_across_dictionaries() {
        let a = StrDict::from_strings(["b", "d", "f"].map(Arc::from));
        let b = StrDict::from_strings(["a", "b", "c", "d"].map(Arc::from));
        // a's code for each of b's entries.
        assert_eq!(a.translate_from(&b), vec![None, Some(0), None, Some(1)]);
        assert_eq!(b.translate_from(&a), vec![Some(1), Some(3), None]);
    }

    #[test]
    fn chunking_covers_exactly_once() {
        let rows: Vec<Vec<i64>> = (0..10).map(|i| vec![i]).collect();
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        let r = Relation::from_int_rows(&refs);
        let c = r.columns();
        for chunk_rows in [1usize, 3, 4, 10, 11, 0] {
            let mut seen = 0usize;
            for ch in c.chunks(chunk_rows) {
                assert_eq!(ch.start(), seen);
                assert!(!ch.is_empty());
                assert!(ch.len() <= chunk_rows.max(1));
                assert_eq!(ch.col(0).len(), ch.len());
                seen += ch.len();
            }
            assert_eq!(seen, 10, "chunk_rows = {chunk_rows}");
        }
        assert_eq!(Relation::empty(1).columns().chunks(4).count(), 0);
    }

    #[test]
    fn views_gather_without_copying() {
        let r = Relation::from_tuples(
            2,
            vec![tuple![1, "a"], tuple![2, "b"], tuple![3, "a"], tuple![4, 9]],
        )
        .unwrap();
        let c = r.columns();
        let idx: Vec<u32> = vec![0, 2, 3];
        let v = c.view(&idx);
        assert_eq!(v.len(), 3);
        assert_eq!(v.arity(), 2);
        assert_eq!(v.rows(), &idx[..]);
        // Values, hashes, eq and cmp all agree with the owner's cells.
        for (vi, &ri) in idx.iter().enumerate() {
            for col in 0..2 {
                assert_eq!(v.value_at(col, vi), c.value_at(col, ri as usize));
                assert_eq!(v.cell_hash(col, vi), c.cell_hash(col, ri as usize));
                assert_eq!(v.col(col).value(vi), c.value_at(col, ri as usize));
                assert_eq!(v.col(col).hash(vi), c.cell_hash(col, ri as usize));
            }
        }
        let full: Vec<u32> = (0..c.len() as u32).collect();
        let w = c.view(&full);
        assert!(v.cell_eq(1, 0, &w, 1, 2)); // "a" == "a"
        assert!(!v.cell_eq(1, 0, &w, 1, 1)); // "a" != "b"
        assert_eq!(v.cell_cmp(0, 1, &w, 0, 3), Ordering::Less); // 3 < 4
                                                                // Typed gathers expose the owner's dense vectors.
        match v.col(0) {
            ColGather::Int { vals, idx } => {
                assert_eq!(vals, &[1, 2, 3, 4]);
                assert_eq!(idx, &[0, 2, 3]);
            }
            other => panic!("expected Int gather, got {other:?}"),
        }
        match v.col(1) {
            ColGather::Mixed { vals, idx } => {
                assert_eq!(vals.len(), 4);
                assert_eq!(idx, &[0, 2, 3]);
            }
            other => panic!("expected Mixed gather, got {other:?}"),
        }
        // An empty view of a non-empty relation is fine.
        assert!(c.view(&[]).is_empty());
    }

    #[test]
    fn chunk_slices_decode_to_the_right_values() {
        let r = Relation::from_str_rows(&[&["a"], &["b"], &["c"], &["d"], &["e"]]);
        let c = r.columns();
        let chunks: Vec<Chunk> = c.chunks(2).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[2].len(), 1);
        assert_eq!(chunks[1].col(0).value(1), Value::str("d"));
        match chunks[1].col(0) {
            ColSlice::Str { codes, dict } => {
                assert_eq!(codes, &[2, 3]);
                assert_eq!(dict.get(codes[0]).as_ref(), "c");
            }
            other => panic!("expected Str slice, got {other:?}"),
        }
    }
}
