//! The execution-mode knob: row-at-a-time vs vectorized operators.
//!
//! [`Execution`] selects which physical operator implementations the
//! planned path uses for its per-node work: the classic tuple-at-a-time
//! functions in [`crate::ops`] or the chunked columnar kernels in
//! [`crate::ops_vec`]. Under [`crate::par::Parallelism::Threads`] the
//! knob composes with partitioning through the unified kernel layer
//! ([`crate::kernel`]): each partition runs the row index-view or the
//! vectorized gather-view kernel the knob selects. All combinations are
//! **byte-identical** in output for every plan — the differential
//! suites in `tests/` enforce it — so the knob is purely about speed.
//!
//! Like [`crate::par::Parallelism`], the knob only affects
//! [`crate::engine::Strategy::Planned`]; the naive and reference
//! evaluators are tuple-at-a-time by definition (they exist to
//! transliterate the paper's semantics, not to be fast).
//!
//! The process-wide default is [`Execution::Vectorized`]; setting the
//! `SETJOINS_EXECUTION` environment variable to `row` (or
//! `row-at-a-time`) flips it, which is how CI runs the whole test suite
//! once per mode.

use std::fmt;
use std::sync::OnceLock;

/// Which operator implementations the planned executor uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Execution {
    /// Classic tuple-at-a-time operators ([`crate::ops`]).
    RowAtATime,
    /// Chunked columnar operators ([`crate::ops_vec`]) over
    /// [`sj_storage::Columns`] views. The default.
    #[default]
    Vectorized,
}

impl Execution {
    /// True iff the vectorized kernels are selected.
    #[inline]
    pub fn is_vectorized(self) -> bool {
        matches!(self, Execution::Vectorized)
    }

    /// The process-wide default: [`Execution::Vectorized`] unless the
    /// `SETJOINS_EXECUTION` environment variable selects the row engine
    /// (`row`, `row-at-a-time`, or `scalar`; case-insensitive). Read
    /// once and cached — the variable is a process-level CI toggle, not
    /// a per-query switch (use [`crate::engine::Engine::execution`] for
    /// that).
    pub fn from_env() -> Execution {
        static MODE: OnceLock<Execution> = OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("SETJOINS_EXECUTION") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "row" | "row-at-a-time" | "scalar" => Execution::RowAtATime,
                _ => Execution::Vectorized,
            },
            Err(_) => Execution::Vectorized,
        })
    }
}

impl fmt::Display for Execution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Execution::RowAtATime => write!(f, "row-at-a-time"),
            Execution::Vectorized => write!(f, "vectorized"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_vectorized() {
        assert_eq!(Execution::default(), Execution::Vectorized);
        assert!(Execution::Vectorized.is_vectorized());
        assert!(!Execution::RowAtATime.is_vectorized());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Execution::RowAtATime.to_string(), "row-at-a-time");
        assert_eq!(Execution::Vectorized.to_string(), "vectorized");
    }
}
