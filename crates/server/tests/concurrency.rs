//! Concurrency differential suite: the server under concurrent readers
//! and a churning writer must serve exactly what a direct [`Engine`]
//! over the same snapshot computes — and the caches must never change
//! an answer, only its provenance.
//!
//! All tests are fixed-seed and deterministic in their *inputs*; thread
//! interleavings vary, which is the point — every interleaving must
//! satisfy the differential invariants.

use proptest::prelude::*;
use sj_algebra::{division, Expr};
use sj_eval::Engine;
use sj_server::{CacheMode, Server, ServerConfig, WriteOp};
use sj_storage::{Database, Relation, Tuple};
use sj_workload::{ServingWorkload, TraceOp, ELEMENT_BASE};

fn config(workers: usize, cache: CacheMode) -> ServerConfig {
    ServerConfig {
        workers,
        cores: workers,
        cache,
        ..ServerConfig::default()
    }
}

/// The serving shape used across this suite.
fn workload() -> ServingWorkload {
    ServingWorkload {
        groups: 32,
        divisor_size: 5,
        hot_queries: 8,
        ops: 120,
        seed: 0xC0FFEE,
        ..ServingWorkload::default()
    }
}

/// N reader sessions pin snapshots and diff every pooled query against
/// a direct engine over that same snapshot, while a writer keeps
/// inserting into `R` and re-ANALYZing. Snapshot isolation means every
/// reader must agree with its own frozen database no matter what the
/// writer does.
#[test]
fn readers_agree_with_direct_engine_on_their_snapshot_while_writer_churns() {
    let w = workload();
    let server = Server::start(w.database(), config(4, CacheMode::PlanAndResult));
    let pool = w.query_pool();
    let writer = server.session();

    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..40i64 {
                writer
                    .write(WriteOp::Insert {
                        relation: "R".into(),
                        tuple: Tuple::from_ints(&[1 + i % 32, ELEMENT_BASE + 900 + i]),
                    })
                    .expect("writer insert");
                if i % 10 == 9 {
                    writer.write(WriteOp::Analyze).expect("writer analyze");
                }
            }
        });
        for _ in 0..4 {
            let session = server.session();
            let pool = &pool;
            scope.spawn(move || {
                for _round in 0..6 {
                    let txn = session.begin();
                    let direct = Engine::new(txn.snapshot().db().clone());
                    for e in pool {
                        let served = txn.query(e.clone()).expect("txn query");
                        let reference = direct.query(e.clone()).run().expect("direct query");
                        assert_eq!(
                            *served.relation, reference.relation,
                            "server ≠ direct engine on pinned snapshot for {e}"
                        );
                        assert_eq!(served.epoch, txn.epoch());
                    }
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.queries, 4 * 6 * pool.len() as u64);
    assert_eq!(stats.writes, 40);
    assert_eq!(stats.analyzes, 4);
}

/// The full mixed trace (queries, inserts, ANALYZEs) replayed through
/// three pipelines in lockstep — a cache-on server, a cache-off server,
/// and a plain engine over a locally-maintained database — must produce
/// byte-identical relations at every query step, and identical final
/// databases.
#[test]
fn trace_replay_cache_on_equals_cache_off_equals_direct() {
    let w = workload();
    let cached = Server::start(w.database(), config(2, CacheMode::PlanAndResult));
    let uncached = Server::start(w.database(), config(2, CacheMode::Off));
    let mut local = w.database();
    let cached_session = cached.session();
    let uncached_session = uncached.session();

    for (i, op) in w.trace().into_iter().enumerate() {
        match op {
            TraceOp::Query(e) => {
                let a = cached_session.query(e.clone()).expect("cached query");
                let b = uncached_session.query(e.clone()).expect("uncached query");
                let c = Engine::new(local.clone())
                    .query(e.clone())
                    .run()
                    .expect("direct query");
                assert_eq!(
                    *a.relation, *b.relation,
                    "op {i}: cache changed answer for {e}"
                );
                assert_eq!(*b.relation, c.relation, "op {i}: server ≠ direct for {e}");
            }
            TraceOp::Insert { relation, tuple } => {
                local
                    .insert(&relation, tuple.clone())
                    .expect("local insert");
                cached_session
                    .write(WriteOp::Insert {
                        relation: relation.clone(),
                        tuple: tuple.clone(),
                    })
                    .expect("cached insert");
                uncached_session
                    .write(WriteOp::Insert { relation, tuple })
                    .expect("uncached insert");
            }
            TraceOp::Analyze => {
                cached_session
                    .write(WriteOp::Analyze)
                    .expect("cached analyze");
                uncached_session
                    .write(WriteOp::Analyze)
                    .expect("uncached analyze");
            }
        }
    }
    assert!(
        cached.stats().result_hits > 0,
        "zipf-skewed trace should produce result-cache hits"
    );
    assert_eq!(cached.shutdown(), uncached.shutdown());
}

/// Concurrent sessions hammering the *same* hot query must all get the
/// correct answer whether they are served cold, from the plan tier, or
/// from the result tier — under every worker count the suite is run at
/// (`SETJOINS_TEST_THREADS` narrows, default {1, 2, 4, 8}).
#[test]
fn hot_query_is_correct_under_every_worker_count() {
    let counts: Vec<usize> = match std::env::var("SETJOINS_TEST_THREADS") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&n| n >= 1)
            .collect(),
        Err(_) => vec![1, 2, 4, 8],
    };
    let w = workload();
    let e = division::division_double_difference("R", "S");
    let expected = Engine::new(w.database())
        .query(e.clone())
        .run()
        .expect("reference")
        .relation;
    for &n in &counts {
        let server = Server::start(w.database(), config(n, CacheMode::PlanAndResult));
        std::thread::scope(|scope| {
            for _ in 0..n.max(2) {
                let session = server.session();
                let e = &e;
                let expected = &expected;
                scope.spawn(move || {
                    for _ in 0..8 {
                        let resp = session.query(e.clone()).expect("hot query");
                        assert_eq!(
                            *resp.relation,
                            *expected,
                            "@{} workers",
                            session.stats().queries
                        );
                    }
                });
            }
        });
        let stats = server.stats();
        assert_eq!(stats.queries, (n.max(2) * 8) as u64);
        assert!(
            stats.result_hits >= stats.queries - (n.max(2) as u64),
            "at most one cold/plan execution per worker burst: {stats:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Property tests: caching never changes an answer
// ---------------------------------------------------------------------------

fn arb_relation(arity: usize) -> impl Strategy<Value = Relation> {
    proptest::collection::vec(proptest::collection::vec(0i64..6, arity), 0..12).prop_map(
        move |rows| {
            Relation::from_tuples(arity, rows.into_iter().map(|r| Tuple::from_ints(&r))).unwrap()
        },
    )
}

fn arb_db() -> impl Strategy<Value = Database> {
    (arb_relation(2), arb_relation(1)).prop_map(|(r, s)| {
        let mut db = Database::new();
        db.set("R", r);
        db.set("S", s);
        db
    })
}

/// One step of a random serving script (see the proptest below).
#[derive(Clone, Debug)]
enum Step {
    Query(usize),
    Insert(i64, i64),
    Analyze,
}

fn arb_script() -> impl Strategy<Value = Vec<Step>> {
    // The vendored proptest stub's `prop_oneof!` is unweighted; repeat
    // the query arm so queries dominate the scripts.
    proptest::collection::vec(
        prop_oneof![
            (0usize..6).prop_map(Step::Query),
            (0usize..6).prop_map(Step::Query),
            (0usize..6).prop_map(Step::Query),
            (0usize..6).prop_map(Step::Query),
            (0i64..6, 0i64..6).prop_map(|(g, b)| Step::Insert(g, b)),
            Just(Step::Analyze),
        ],
        1..25,
    )
}

fn script_pool() -> Vec<Expr> {
    vec![
        division::division_double_difference("R", "S"),
        division::division_equality("R", "S"),
        division::division_counting("R", "S"),
        Expr::rel("R").project([1]),
        Expr::rel("R").semijoin_eq([(2, 1)], Expr::rel("S")),
        Expr::rel("R").select_eq(1, 2).project([2]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random database × random op script: every query answered by the
    /// cache-on server is byte-identical to the cache-off server and to
    /// a direct engine over the evolving database.
    #[test]
    fn caching_never_changes_any_answer(db in arb_db(), script in arb_script()) {
        let pool = script_pool();
        let cached = Server::start(db.clone(), config(1, CacheMode::PlanAndResult));
        let plan_only = Server::start(db.clone(), config(1, CacheMode::Plan));
        let mut local = db;
        let cs = cached.session();
        let ps = plan_only.session();
        for step in script {
            match step {
                Step::Query(i) => {
                    let e = pool[i].clone();
                    let a = cs.query(e.clone()).unwrap();
                    let b = ps.query(e.clone()).unwrap();
                    let c = Engine::new(local.clone()).query(e.clone()).run().unwrap();
                    prop_assert_eq!(&*a.relation, &*b.relation, "tiers disagree on {}", &e);
                    prop_assert_eq!(&*b.relation, &c.relation, "server ≠ direct on {}", &e);
                }
                Step::Insert(g, b) => {
                    let t = Tuple::from_ints(&[g, b]);
                    local.insert("R", t.clone()).unwrap();
                    cs.write(WriteOp::Insert { relation: "R".into(), tuple: t.clone() }).unwrap();
                    ps.write(WriteOp::Insert { relation: "R".into(), tuple: t }).unwrap();
                }
                Step::Analyze => {
                    cs.write(WriteOp::Analyze).unwrap();
                    ps.write(WriteOp::Analyze).unwrap();
                }
            }
        }
        prop_assert_eq!(cached.shutdown(), plan_only.shutdown());
    }
}
