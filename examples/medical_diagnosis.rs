//! The paper's Fig. 1 scenario: diagnosing patients by set-containment
//! join, end to end — exactly the tables printed in the paper, run
//! through the [`Engine`] and its algorithm registry.
//!
//! ```bash
//! cargo run --example medical_diagnosis
//! ```

use setjoins::prelude::*;
use sj_storage::display::render_relation;
use sj_workload::figures;

fn main() {
    let engine = Engine::new(figures::fig1());
    let db = engine.db();

    println!("== Fig. 1 of Leinders & Van den Bussche ==\n");
    println!(
        "{}",
        render_relation(db.get("Person").unwrap(), "Person", &["pName", "Symptom"])
    );
    println!(
        "{}",
        render_relation(db.get("Disease").unwrap(), "Disease", &["dName", "Symptom"])
    );
    println!(
        "{}",
        render_relation(db.get("Symptoms").unwrap(), "Symptoms", &["Symptom"])
    );

    // Set-containment join: which persons show ALL symptoms of which
    // disease? The engine's auto selector picks the algorithm.
    let diagnosis = engine
        .set_join("Person", "Disease", SetPredicate::Contains)
        .unwrap();
    println!(
        "{}",
        render_relation(
            &diagnosis.relation,
            "Person ⋈[Person.Symptom ⊇ Disease.Symptom] Disease",
            &["pName", "dName"]
        )
    );
    println!(
        "(set join ran {} — {})\n",
        diagnosis.algorithm, diagnosis.complexity
    );
    assert_eq!(diagnosis.relation, figures::fig1_expected_join());

    // Division: who has every symptom in the Symptoms checklist?
    let quotient = engine
        .divide("Person", "Symptoms", DivisionSemantics::Containment)
        .unwrap();
    println!(
        "{}",
        render_relation(&quotient.relation, "Person ÷ Symptoms", &["pName"])
    );
    println!(
        "(division ran {} — {})\n",
        quotient.algorithm, quotient.complexity
    );
    assert_eq!(quotient.relation, figures::fig1_expected_division());

    // Compare the registered algorithm families on a scaled-up version of
    // the same workload: ablation is one `.algorithm(...)` away.
    println!("== scaled workload: 2,000 patients, 12-symptom checklist ==\n");
    let w = sj_workload::DivisionWorkload {
        groups: 2_000,
        divisor_size: 12,
        containment_fraction: 0.02,
        extra_per_group: 6,
        noise_domain: 500,
        seed: 20_260_613,
    };
    let (r, s, expected) = w.generate();
    let mut big = Database::new();
    big.set("Person", r);
    big.set("Symptoms", s);
    let big_engine = Engine::new(big);
    for alg in Registry::standard().division_algorithms() {
        let run = big_engine
            .clone()
            .algorithm(AlgorithmChoice::named(alg.name()))
            .divide("Person", "Symptoms", DivisionSemantics::Containment)
            .unwrap();
        assert_eq!(run.relation, expected);
        println!(
            "  {:<12} {:>8.1?}  → {} qualifying patients ({})",
            run.algorithm,
            run.elapsed,
            run.relation.len(),
            run.complexity
        );
    }
    let auto = big_engine
        .divide("Person", "Symptoms", DivisionSemantics::Containment)
        .unwrap();
    println!("  auto selector picked: {}", auto.algorithm);
    println!(
        "\n(The paper proves why the nested-loop pattern — the only one \
         plain RA can express — must fall behind.)"
    );
}
