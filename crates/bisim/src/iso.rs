//! C-partial isomorphisms — Definition 10 of the paper.

use sj_storage::{Database, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A finite partial bijection `f : X → Y` between value sets.
///
/// Stored with both directions indexed, so application and inversion are
/// logarithmic. Whether a given `PartialIso` is an actual *C-partial
/// isomorphism* between two databases is checked by
/// [`check_c_partial_iso`]; the struct itself only guarantees
/// bijectivity.
#[derive(Clone, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct PartialIso {
    fwd: BTreeMap<Value, Value>,
    bwd: BTreeMap<Value, Value>,
}

impl PartialIso {
    /// Build from `(x, f(x))` pairs. Fails if the pairs are inconsistent
    /// (same x to two images) or non-injective (two x to the same image).
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Value, Value)>) -> Result<Self, String> {
        let mut fwd = BTreeMap::new();
        let mut bwd = BTreeMap::new();
        for (x, y) in pairs {
            if let Some(prev) = fwd.get(&x) {
                if prev != &y {
                    return Err(format!("inconsistent: {x} ↦ {prev} and {x} ↦ {y}"));
                }
                continue;
            }
            if let Some(prev) = bwd.get(&y) {
                if prev != &x {
                    return Err(format!("not injective: {prev} ↦ {y} and {x} ↦ {y}"));
                }
                continue;
            }
            fwd.insert(x.clone(), y.clone());
            bwd.insert(y, x);
        }
        Ok(PartialIso { fwd, bwd })
    }

    /// The mapping `ā → b̄` induced componentwise by two tuples, as used
    /// throughout the paper (e.g. `(1,2) → (6,7)` in Example 12). Fails if
    /// the arities differ or the induced map is not a bijection.
    pub fn from_tuples(a: &Tuple, b: &Tuple) -> Result<Self, String> {
        if a.arity() != b.arity() {
            return Err(format!("arity mismatch: {} vs {}", a.arity(), b.arity()));
        }
        PartialIso::from_pairs(a.iter().cloned().zip(b.iter().cloned()))
    }

    /// The unique order-preserving bijection between two equal-sized value
    /// sets (given sorted and deduplicated). Returns `None` on size
    /// mismatch. Because Definition 10 forces `x < y ⟺ f(x) < f(y)`, this
    /// monotone map is the *only* candidate bijection between two sets.
    pub fn monotone(x: &[Value], y: &[Value]) -> Option<Self> {
        if x.len() != y.len() {
            return None;
        }
        debug_assert!(
            x.windows(2).all(|w| w[0] < w[1]),
            "domain must be sorted/dedup"
        );
        debug_assert!(
            y.windows(2).all(|w| w[0] < w[1]),
            "range must be sorted/dedup"
        );
        Some(PartialIso {
            fwd: x.iter().cloned().zip(y.iter().cloned()).collect(),
            bwd: y.iter().cloned().zip(x.iter().cloned()).collect(),
        })
    }

    /// `f(x)`.
    pub fn apply(&self, x: &Value) -> Option<&Value> {
        self.fwd.get(x)
    }

    /// `f⁻¹(y)`.
    pub fn apply_inverse(&self, y: &Value) -> Option<&Value> {
        self.bwd.get(y)
    }

    /// The domain `X`, sorted.
    pub fn domain(&self) -> Vec<Value> {
        self.fwd.keys().cloned().collect()
    }

    /// The range `Y`, sorted.
    pub fn range(&self) -> Vec<Value> {
        self.bwd.keys().cloned().collect()
    }

    /// Number of mapped values.
    pub fn len(&self) -> usize {
        self.fwd.len()
    }

    /// True for the empty mapping.
    pub fn is_empty(&self) -> bool {
        self.fwd.is_empty()
    }

    /// Map a tuple componentwise; `None` if some component is outside the
    /// domain.
    pub fn map_tuple(&self, t: &Tuple) -> Option<Tuple> {
        t.iter()
            .map(|v| self.fwd.get(v).cloned())
            .collect::<Option<Vec<_>>>()
            .map(Tuple::new)
    }

    /// Map a tuple backwards.
    pub fn map_tuple_inverse(&self, t: &Tuple) -> Option<Tuple> {
        t.iter()
            .map(|v| self.bwd.get(v).cloned())
            .collect::<Option<Vec<_>>>()
            .map(Tuple::new)
    }

    /// Do `self` and `other` agree on every value of `on` that lies in
    /// both domains? (The forth condition's "f and g agree on X ∩ X′".)
    pub fn agrees_forward(&self, other: &PartialIso, on: &[Value]) -> bool {
        on.iter()
            .all(|v| match (self.fwd.get(v), other.fwd.get(v)) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            })
    }

    /// Do the inverses agree on every value of `on` in both ranges?
    /// (The back condition's "f⁻¹ and g⁻¹ agree on Y ∩ Y′".)
    pub fn agrees_backward(&self, other: &PartialIso, on: &[Value]) -> bool {
        on.iter()
            .all(|v| match (self.bwd.get(v), other.bwd.get(v)) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            })
    }

    /// Is the map order-preserving: `x < y ⟺ f(x) < f(y)`? Equivalent to
    /// the images being strictly increasing along the sorted domain.
    pub fn is_order_preserving(&self) -> bool {
        let imgs: Vec<&Value> = self.fwd.values().collect();
        imgs.windows(2).all(|w| w[0] < w[1])
    }
}

impl fmt::Display for PartialIso {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (x, y)) in self.fwd.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}→{y}")?;
        }
        write!(f, "}}")
    }
}

/// Check that `f` is a **C-partial isomorphism** from `a` to `b`
/// (Definition 10):
///
/// 1. for each relation `R` and every tuple over the domain:
///    `x̄ ∈ A(R) ⟺ f(x̄) ∈ B(R)`;
/// 2. order is preserved both ways;
/// 3. for every `c ∈ C`: `x = c ⟺ f(x) = c`.
///
/// Relation condition (1) quantifies over all tuples with values in the
/// domain; we check it by scanning `A(R)` for tuples inside the domain
/// (forward direction) and `B(R)` for tuples inside the range (backward),
/// which is equivalent and linear in the database sizes.
pub fn check_c_partial_iso(
    a: &Database,
    b: &Database,
    f: &PartialIso,
    constants: &[Value],
) -> Result<(), String> {
    // (2) order.
    if !f.is_order_preserving() {
        return Err(format!("{f} is not order-preserving"));
    }
    // (3) constants.
    for c in constants {
        if let Some(img) = f.apply(c) {
            if img != c {
                return Err(format!("constant {c} mapped to {img}"));
            }
        }
        if let Some(pre) = f.apply_inverse(c) {
            if pre != c {
                return Err(format!("{pre} mapped onto constant {c}"));
            }
        }
    }
    // (1) relation patterns, both directions. Every relation name of
    // either database participates (a name missing on one side is treated
    // as an empty relation there).
    let mut names: Vec<&str> = a.names().chain(b.names()).collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        if let Some(ra) = a.get(name) {
            for t in ra {
                if let Some(img) = f.map_tuple(t) {
                    let in_b = b.get(name).is_some_and(|rb| rb.contains(&img));
                    if !in_b {
                        return Err(format!("{f}: {t} ∈ A({name}) but image {img} ∉ B({name})"));
                    }
                }
            }
        }
        if let Some(rb) = b.get(name) {
            for t in rb {
                if let Some(pre) = f.map_tuple_inverse(t) {
                    let in_a = a.get(name).is_some_and(|ra| ra.contains(&pre));
                    if !in_a {
                        return Err(format!(
                            "{f}: {t} ∈ B({name}) but preimage {pre} ∉ A({name})"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::{tuple, Relation};

    fn fig3_a() -> Database {
        let mut d = Database::new();
        d.set("R", Relation::from_int_rows(&[&[1, 2], &[2, 3]]));
        d.set("S", Relation::from_int_rows(&[&[1, 2]]));
        d.set("T", Relation::from_int_rows(&[&[2, 3]]));
        d
    }

    fn fig3_b() -> Database {
        let mut d = Database::new();
        d.set(
            "R",
            Relation::from_int_rows(&[&[6, 7], &[7, 8], &[9, 10], &[10, 11]]),
        );
        d.set("S", Relation::from_int_rows(&[&[6, 7], &[9, 10]]));
        d.set("T", Relation::from_int_rows(&[&[7, 8], &[10, 11]]));
        d
    }

    #[test]
    fn from_tuples_builds_componentwise_map() {
        let f = PartialIso::from_tuples(&tuple![1, 2], &tuple![6, 7]).unwrap();
        assert_eq!(f.apply(&Value::int(1)), Some(&Value::int(6)));
        assert_eq!(f.apply(&Value::int(2)), Some(&Value::int(7)));
        assert_eq!(f.apply_inverse(&Value::int(7)), Some(&Value::int(2)));
        assert_eq!(f.len(), 2);
        assert_eq!(f.to_string(), "{1→6, 2→7}");
    }

    #[test]
    fn from_tuples_detects_inconsistency() {
        // (1,1) → (6,7): 1 would map to both 6 and 7.
        assert!(PartialIso::from_tuples(&tuple![1, 1], &tuple![6, 7]).is_err());
        // (1,2) → (6,6): not injective.
        assert!(PartialIso::from_tuples(&tuple![1, 2], &tuple![6, 6]).is_err());
        // (1,1) → (6,6) is fine: {1→6}.
        let f = PartialIso::from_tuples(&tuple![1, 1], &tuple![6, 6]).unwrap();
        assert_eq!(f.len(), 1);
        // arity mismatch
        assert!(PartialIso::from_tuples(&tuple![1], &tuple![6, 7]).is_err());
    }

    #[test]
    fn monotone_map() {
        let x = [Value::int(1), Value::int(3)];
        let y = [Value::int(10), Value::int(30)];
        let f = PartialIso::monotone(&x, &y).unwrap();
        assert_eq!(f.apply(&Value::int(3)), Some(&Value::int(30)));
        assert!(PartialIso::monotone(&x, &y[..1]).is_none());
        assert!(f.is_order_preserving());
    }

    #[test]
    fn fig3_example_maps_are_partial_isos() {
        let (a, b) = (fig3_a(), fig3_b());
        for (at, bt) in [
            (tuple![1, 2], tuple![6, 7]),
            (tuple![2, 3], tuple![7, 8]),
            (tuple![1, 2], tuple![9, 10]),
            (tuple![2, 3], tuple![10, 11]),
        ] {
            let f = PartialIso::from_tuples(&at, &bt).unwrap();
            check_c_partial_iso(&a, &b, &f, &[]).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn relation_pattern_violation_detected() {
        let (a, b) = (fig3_a(), fig3_b());
        // (1,2) → (7,8): (1,2) ∈ A(S) but (7,8) ∉ B(S).
        let f = PartialIso::from_tuples(&tuple![1, 2], &tuple![7, 8]).unwrap();
        let err = check_c_partial_iso(&a, &b, &f, &[]).unwrap_err();
        assert!(err.contains("S"), "{err}");
    }

    #[test]
    fn order_violation_detected() {
        let a = Database::new();
        let b = Database::new();
        let f = PartialIso::from_tuples(&tuple![1, 2], &tuple![7, 6]).unwrap();
        assert!(check_c_partial_iso(&a, &b, &f, &[]).is_err());
    }

    #[test]
    fn constant_violation_detected() {
        let a = Database::new();
        let b = Database::new();
        let f = PartialIso::from_tuples(&tuple![5], &tuple![6]).unwrap();
        assert!(check_c_partial_iso(&a, &b, &f, &[Value::int(5)]).is_err());
        assert!(check_c_partial_iso(&a, &b, &f, &[Value::int(6)]).is_err());
        assert!(check_c_partial_iso(&a, &b, &f, &[Value::int(9)]).is_ok());
        let id = PartialIso::from_tuples(&tuple![5], &tuple![5]).unwrap();
        assert!(check_c_partial_iso(&a, &b, &id, &[Value::int(5)]).is_ok());
    }

    #[test]
    fn agreement_checks() {
        let f = PartialIso::from_tuples(&tuple![1, 2], &tuple![6, 7]).unwrap();
        let g = PartialIso::from_tuples(&tuple![2, 3], &tuple![7, 8]).unwrap();
        let h = PartialIso::from_tuples(&tuple![2, 3], &tuple![9, 8]).unwrap();
        assert!(f.agrees_forward(&g, &[Value::int(2)]));
        assert!(!f.agrees_forward(&h, &[Value::int(2)]));
        assert!(f.agrees_backward(&g, &[Value::int(7)]));
        // values outside either domain are ignored
        assert!(f.agrees_forward(&g, &[Value::int(99)]));
    }

    #[test]
    fn map_tuple_roundtrip() {
        let f = PartialIso::from_tuples(&tuple![1, 2], &tuple![6, 7]).unwrap();
        let img = f.map_tuple(&tuple![2, 1, 2]).unwrap();
        assert_eq!(img, tuple![7, 6, 7]);
        assert_eq!(f.map_tuple_inverse(&img).unwrap(), tuple![2, 1, 2]);
        assert!(f.map_tuple(&tuple![3]).is_none());
    }

    #[test]
    fn missing_relation_treated_as_empty() {
        let mut a = Database::new();
        a.set("R", Relation::from_int_rows(&[&[1]]));
        let b = Database::new(); // no R at all
        let f = PartialIso::from_tuples(&tuple![1], &tuple![2]).unwrap();
        assert!(check_c_partial_iso(&a, &b, &f, &[]).is_err());
    }
}
