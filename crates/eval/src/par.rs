//! The parallelism knob: how many worker threads the engine's executors
//! may fan partitioned work out to.
//!
//! One type serves every layer: the `Engine` builder stores it, the
//! physical planner's DAG executor consults it (independent plan nodes
//! run concurrently, join/semijoin nodes run partition-parallel — see
//! [`crate::kernel`], where the worker count composes orthogonally with
//! the [`crate::exec::Execution`] mode), and the registry-routed set
//! operators receive its worker count as the selection hint for the
//! partition-parallel division/set-join variants.
//!
//! Parallel execution is **semantically invisible**: partition placement
//! is deterministic, workers never share mutable state, and every merge
//! re-establishes the canonical relation order, so any `Parallelism`
//! value produces byte-identical results (property-tested in
//! `tests/parallel.rs`). [`Parallelism::Serial`] remains the default —
//! existing callers are unaffected until they opt in.

use std::fmt;

/// Worker-thread budget for partitioned execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Hash)]
pub enum Parallelism {
    /// Single-threaded execution on the caller's thread — the default,
    /// and the behavior of every evaluator before the knob existed.
    #[default]
    Serial,
    /// Fan partitioned operators (and independent plan nodes) out over
    /// this many scoped worker threads. `Threads(0)` means "one worker
    /// per available CPU" (capped at 8); `Threads(1)` is serial
    /// execution through the parallel code path — useful for testing the
    /// partition machinery without concurrency.
    Threads(usize),
}

impl Parallelism {
    /// The effective worker count: `Serial` ⇒ 1, `Threads(0)` ⇒ one per
    /// available CPU (capped at 8), `Threads(n)` ⇒ `n` clamped to
    /// [`sj_setjoin::parallel::MAX_WORKERS`]. Delegates to
    /// [`sj_setjoin::parallel::resolve_workers`] — the one resolution
    /// rule shared with the registry's partition-parallel algorithms, so
    /// the engine and the set operators can never disagree on the
    /// budget.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => sj_setjoin::parallel::resolve_workers(n),
        }
    }

    /// True iff more than one worker would run.
    pub fn is_parallel(self) -> bool {
        self.workers() > 1
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parallelism::Serial => write!(f, "serial"),
            Parallelism::Threads(0) => write!(f, "threads(auto={})", self.workers()),
            Parallelism::Threads(n) => write!(f, "threads({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_counts() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(1).workers(), 1);
        assert_eq!(Parallelism::Threads(4).workers(), 4);
        assert!(Parallelism::Threads(0).workers() >= 1);
        assert_eq!(
            Parallelism::Threads(usize::MAX).workers(),
            sj_setjoin::parallel::MAX_WORKERS
        );
        assert!(!Parallelism::Serial.is_parallel());
        assert!(!Parallelism::Threads(1).is_parallel());
        assert!(Parallelism::Threads(2).is_parallel());
    }

    #[test]
    fn default_is_serial() {
        assert_eq!(Parallelism::default(), Parallelism::Serial);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Parallelism::Serial.to_string(), "serial");
        assert_eq!(Parallelism::Threads(4).to_string(), "threads(4)");
        assert!(Parallelism::Threads(0)
            .to_string()
            .starts_with("threads(auto="));
    }
}
