//! # setjoins — umbrella crate
//!
//! A production-quality Rust reproduction of
//!
//! > Dirk Leinders, Jan Van den Bussche.
//! > *On the complexity of division and set joins in the relational algebra.*
//! > PODS 2005; JCSS 73(3):538–549, 2007.
//!
//! This crate re-exports the whole workspace under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`storage`] | `sj-storage` | values, tuples, relations, databases |
//! | [`algebra`] | `sj-algebra` | RA / SA / extended-RA expression ASTs |
//! | [`eval`] | `sj-eval` | instrumented evaluators |
//! | [`logic`] | `sj-logic` | guarded fragment, Theorem 8 translations |
//! | [`bisim`] | `sj-bisim` | guarded bisimulation checker and solver |
//! | [`core`] | `sj-core` | dichotomy theorem machinery (the paper's contribution) |
//! | [`setjoin`] | `sj-setjoin` | division and set-join operators & algorithms |
//! | [`workload`] | `sj-workload` | deterministic data generators, paper figures |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`, or:
//!
//! ```
//! use setjoins::prelude::*;
//!
//! // Fig. 1: who has all the symptoms in the Symptoms table?
//! let db = setjoins::workload::figures::fig1();
//! let result = setjoins::setjoin::division::divide(
//!     db.get("Person").unwrap(),
//!     db.get("Symptoms").unwrap(),
//!     DivisionSemantics::Containment,
//! );
//! assert_eq!(result.len(), 2); // An and Bob
//! ```

pub use sj_algebra as algebra;
pub use sj_bisim as bisim;
pub use sj_core as core;
pub use sj_eval as eval;
pub use sj_logic as logic;
pub use sj_setjoin as setjoin;
pub use sj_storage as storage;
pub use sj_workload as workload;

/// Most-used items in one import.
pub mod prelude {
    pub use sj_algebra::{Condition, Expr};
    pub use sj_eval::{evaluate, evaluate_instrumented, EvalReport};
    pub use sj_setjoin::{divide, set_join, DivisionSemantics, SetPredicate};
    pub use sj_storage::{tuple, Database, Relation, Schema, Tuple, Value};
}
