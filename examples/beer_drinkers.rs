//! Ullman's beer-drinkers schema (Examples 3 and 7, Fig. 6): the semijoin
//! algebra, the guarded fragment, their Theorem 8 translations, and a
//! guarded-bisimulation inexpressibility proof — all executed through the
//! [`Engine`].
//!
//! ```bash
//! cargo run --example beer_drinkers
//! ```

use setjoins::prelude::*;
use sj_bisim::are_bisimilar;
use sj_logic::{eval_query, gf_to_sa, sa_to_gf};
use sj_workload::figures;

fn main() {
    let engine = Engine::new(figures::example3_beer_db());
    let schema = engine.db().schema();

    // Example 3: the lousy-bar query in the semijoin algebra SA=.
    let e3 = sj_algebra::division::example3_lousy_bar_sa();
    println!("Example 3 (SA=):\n  {e3}");
    let drinkers = engine.query(e3.clone()).run().unwrap().relation;
    println!("  drinkers visiting a lousy bar: {:?}\n", drinkers.tuples());

    // Example 7: the same query in the guarded fragment GF.
    let phi = sj_logic::formula::example7_lousy_bar();
    println!("Example 7 (GF):\n  {phi}");
    let candidates = engine.db().active_domain();
    let via_gf = eval_query(engine.db(), &phi, &["x".into()], &candidates);
    println!("  GF answers: {via_gf:?}\n");
    assert_eq!(via_gf, drinkers.tuples().to_vec());

    // Theorem 8, executed in both directions.
    let gf = sa_to_gf(&e3, &schema).unwrap();
    println!("Theorem 8, SA= → GF:\n  {}\n", gf.formula);
    let sa = gf_to_sa(&phi, &schema, &[]).unwrap();
    println!("Theorem 8, GF → SA=:\n  {}\n", sa.expr);
    assert_eq!(engine.query(sa.expr).run().unwrap().relation, drinkers);

    // Section 4.1: the CYCLIC query "drinkers visiting a bar serving a
    // beer they like" is NOT expressible in SA= — shown by the Fig. 6
    // bisimulation — hence every RA plan for it is quadratic.
    let (a, b) = (figures::fig6_a(), figures::fig6_b());
    let q = sj_algebra::division::cyclic_beer_query_ra();
    println!("Cyclic query Q (RA):\n  {q}");
    let on = |db: Database| Engine::new(db).query(q.clone()).run().unwrap().relation;
    println!("  Q on Fig. 6 A: {:?}", on(a.clone()).tuples());
    println!("  Q on Fig. 6 B: {:?}", on(b.clone()).tuples());
    let cert = are_bisimilar(&a, &tuple!["alex"], &b, &tuple!["alex"], &[])
        .expect("Fig. 6 pair is guarded bisimilar");
    println!(
        "  yet (A, alex) ~ (B, alex): guarded bisimulation with {} partial \
         isomorphisms found.",
        cert.len()
    );
    println!(
        "  ⇒ Q is not in SA=, so by the dichotomy theorem every RA \
         expression for Q is quadratic."
    );

    // Measure it: the join plan's intermediates on a growing bar scene,
    // via an instrumented naive engine (per-tree-node cardinalities).
    println!("\nIntermediate sizes of the cyclic-query join plan:");
    for k in [20i64, 40, 80, 160] {
        let mut big = Database::new();
        // k drinkers, k bars, k beers; drinker i visits bar i, bar i
        // serves beers i and i+1, drinker i likes beer i+1 of the NEXT
        // bar — a sparse cyclic pattern.
        let visits: Vec<[i64; 2]> = (0..k).map(|i| [i, 1000 + i]).collect();
        let serves: Vec<[i64; 2]> = (0..k)
            .flat_map(|i| [[1000 + i, 2000 + i], [1000 + i, 2000 + (i + 1) % k]])
            .collect();
        let likes: Vec<[i64; 2]> = (0..k).map(|i| [i, 2000 + (i + 1) % k]).collect();
        let to_rel = |rows: &[[i64; 2]]| {
            Relation::from_tuples(2, rows.iter().map(|r| Tuple::from_ints(r))).unwrap()
        };
        big.set("Visits", to_rel(&visits));
        big.set("Serves", to_rel(&serves));
        big.set("Likes", to_rel(&likes));
        let out = Engine::new(big)
            .strategy(Strategy::Naive)
            .instrument(Instrument::Cardinalities)
            .query(q.clone())
            .run()
            .unwrap();
        let report = out.report.unwrap();
        println!(
            "  |D| = {:>4}  max intermediate = {:>6}  output = {}",
            report.db_size(),
            report.max_intermediate(),
            out.relation.len()
        );
    }
}
