//! Integration and property tests for the unified `Engine` API: output
//! must be identical across every evaluation [`Strategy`] and across
//! every registered set-join/division algorithm, on random databases and
//! predicates as well as on the paper's workloads.

use proptest::prelude::*;
// `engine::Strategy` (the enum) and proptest's `Strategy` (the trait)
// collide under the two globs: bind each explicitly.
use proptest::strategy::Strategy as PropStrategy;
use setjoins::eval::Strategy;
use setjoins::prelude::*;
use sj_algebra::division;
use sj_workload::{
    adversarial_division_series, DivisionWorkload, ElementDist, SetJoinWorkload, SetSizeDist,
};

// ---------------------------------------------------------------------------
// Deterministic workload cross-checks
// ---------------------------------------------------------------------------

fn paper_division_plans() -> Vec<(&'static str, Expr)> {
    vec![
        (
            "double-difference",
            division::division_double_difference("R", "S"),
        ),
        ("via-join", division::division_via_join("R", "S")),
        ("equality", division::division_equality("R", "S")),
        ("counting", division::division_counting("R", "S")),
        (
            "equality-counting",
            division::division_equality_counting("R", "S"),
        ),
    ]
}

/// Acceptance check of the Engine issue: `Strategy::Reference` matches
/// `Planned` and `Naive` byte-for-byte on the paper's division workloads.
#[test]
fn strategies_agree_on_division_workloads() {
    for db in adversarial_division_series(&[16, 64], 0xE16E) {
        for (name, e) in paper_division_plans() {
            let run = |s: Strategy| {
                Engine::new(db.clone())
                    .strategy(s)
                    .query(e.clone())
                    .run()
                    .unwrap()
                    .relation
            };
            let reference = run(Strategy::Reference);
            assert_eq!(run(Strategy::Planned), reference, "{name} planned");
            assert_eq!(run(Strategy::Naive), reference, "{name} naive");
        }
    }
}

/// ... and on the paper's set-join workloads, via the set-containment
/// RA plan and the registry-routed direct operator.
#[test]
fn strategies_and_registry_agree_on_set_join_workloads() {
    let w = SetJoinWorkload {
        r_groups: 48,
        s_groups: 48,
        set_size: SetSizeDist::Uniform(2, 8),
        domain: 32,
        elements: ElementDist::Uniform,
        seed: 0x5E7F,
    };
    let (r, s) = w.generate();
    let mut db = Database::new();
    db.set("R", r);
    db.set("S", s);
    let plan = division::set_containment_join_plan("R", "S");
    let run = |s: Strategy| {
        Engine::new(db.clone())
            .strategy(s)
            .query(plan.clone())
            .run()
            .unwrap()
            .relation
    };
    let reference = run(Strategy::Reference);
    assert_eq!(run(Strategy::Planned), reference, "planned");
    assert_eq!(run(Strategy::Naive), reference, "naive");
    // Every registered algorithm, through the engine's named choice.
    let engine = Engine::new(db.clone());
    for alg in Registry::standard().set_join_algorithms() {
        if !alg.supports(SetPredicate::Contains) {
            continue;
        }
        let out = engine
            .clone()
            .algorithm(AlgorithmChoice::named(alg.name()))
            .set_join("R", "S", SetPredicate::Contains)
            .unwrap();
        assert_eq!(out.relation, reference, "{}", out.algorithm);
    }
    let auto = engine.set_join("R", "S", SetPredicate::Contains).unwrap();
    assert_eq!(auto.relation, reference, "auto={}", auto.algorithm);
}

#[test]
fn engine_division_matches_ra_plans_on_scaled_workloads() {
    let w = DivisionWorkload {
        groups: 64,
        divisor_size: 6,
        containment_fraction: 0.3,
        extra_per_group: 3,
        noise_domain: 64,
        seed: 0xD1F,
    };
    let engine = Engine::new(w.database());
    let via_plan = engine
        .query(division::division_double_difference("R", "S"))
        .run()
        .unwrap()
        .relation;
    for alg in Registry::standard().division_algorithms() {
        let out = engine
            .clone()
            .algorithm(AlgorithmChoice::named(alg.name()))
            .divide("R", "S", DivisionSemantics::Containment)
            .unwrap();
        assert_eq!(out.relation, via_plan, "{}", out.algorithm);
    }
}

#[test]
fn optimizer_levels_preserve_results_across_strategies() {
    let db = sj_workload::figures::example3_beer_db();
    for e in [
        division::example3_lousy_bar_ra(),
        division::example3_lousy_bar_sa(),
        division::cyclic_beer_query_ra(),
    ] {
        let expected = Engine::new(db.clone())
            .strategy(Strategy::Reference)
            .query(e.clone())
            .run()
            .unwrap()
            .relation;
        for level in [
            OptimizeLevel::Off,
            OptimizeLevel::Structural,
            OptimizeLevel::Full,
        ] {
            for strategy in [Strategy::Planned, Strategy::Naive] {
                let out = Engine::new(db.clone())
                    .optimize(level)
                    .strategy(strategy)
                    .query(e.clone())
                    .run()
                    .unwrap();
                assert_eq!(out.relation, expected, "{e} at {level}/{strategy}");
            }
        }
    }
}

#[test]
fn query_output_shape_follows_configuration() {
    let db = sj_workload::figures::example3_beer_db();
    let e = division::example3_lousy_bar_sa();
    // plan present iff Planned; report present iff instrumented (and the
    // strategy supports it); elapsed present iff Timings.
    let cases: Vec<(Strategy, Instrument, bool, bool, bool)> = vec![
        (Strategy::Planned, Instrument::Off, true, false, false),
        (
            Strategy::Planned,
            Instrument::Cardinalities,
            true,
            true,
            false,
        ),
        (Strategy::Planned, Instrument::Timings, true, true, true),
        (
            Strategy::Naive,
            Instrument::Cardinalities,
            false,
            true,
            false,
        ),
        (Strategy::Reference, Instrument::Timings, false, false, true),
    ];
    for (strategy, instrument, has_plan, has_report, has_elapsed) in cases {
        let out = Engine::new(db.clone())
            .strategy(strategy)
            .instrument(instrument)
            .query(e.clone())
            .run()
            .unwrap();
        assert_eq!(out.plan.is_some(), has_plan, "{strategy}/{instrument:?}");
        assert_eq!(
            out.report.is_some(),
            has_report,
            "{strategy}/{instrument:?}"
        );
        assert_eq!(
            out.elapsed.is_some(),
            has_elapsed,
            "{strategy}/{instrument:?}"
        );
        if let Some(report) = &out.report {
            assert_eq!(report.result(), &out.relation);
            assert!(report.max_intermediate() >= out.relation.len());
        }
    }
}

#[test]
fn explain_is_strategy_shaped() {
    let db = sj_workload::figures::example3_beer_db();
    let e = division::example3_lousy_bar_sa();
    let planned = Engine::new(db.clone()).query(e.clone()).explain().unwrap();
    assert!(planned.contains("physical plan"), "{planned}");
    let naive = Engine::new(db)
        .strategy(Strategy::Naive)
        .query(e)
        .explain()
        .unwrap();
    assert!(naive.contains("max intermediate"), "{naive}");
}

// ---------------------------------------------------------------------------
// Property tests: random databases, expressions, predicates
// ---------------------------------------------------------------------------

fn arb_pairs(max_key: i64, max_val: i64, len: usize) -> impl PropStrategy<Value = Relation> {
    proptest::collection::vec((1..=max_key, 1..=max_val), 0..len).prop_map(|rows| {
        Relation::from_tuples(2, rows.into_iter().map(|(a, b)| Tuple::from_ints(&[a, b]))).unwrap()
    })
}

fn arb_db() -> impl PropStrategy<Value = Database> {
    (arb_pairs(6, 6, 24), arb_pairs(6, 6, 24), arb_divisor()).prop_map(|(r, s, t)| {
        let mut db = Database::new();
        db.set("R", r);
        db.set("S", s);
        db.set("T", t);
        db
    })
}

fn arb_divisor() -> impl PropStrategy<Value = Relation> {
    proptest::collection::vec(1i64..=6, 0..6).prop_map(|vals| {
        Relation::from_tuples(1, vals.into_iter().map(|v| Tuple::from_ints(&[v]))).unwrap()
    })
}

/// Arbitrary valid arity-2 expressions over R, S (both binary).
fn arb_expr() -> impl PropStrategy<Value = Expr> {
    let leaf = prop_oneof![Just(Expr::rel("R")), Just(Expr::rel("S"))];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.diff(b)),
            (1usize..=2, 1usize..=2, inner.clone()).prop_map(|(i, j, a)| a.select_eq(i, j)),
            (1usize..=2, 1usize..=2, inner.clone()).prop_map(|(i, j, a)| a.select_lt(i, j)),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| a.join(Condition::eq(1, 1), b).project([1, 2])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.semijoin(Condition::eq(2, 1), b)),
            inner.clone().prop_map(|a| a.project([2, 1])),
        ]
    })
}

fn arb_predicate() -> impl PropStrategy<Value = SetPredicate> {
    prop_oneof![
        Just(SetPredicate::Contains),
        Just(SetPredicate::ContainedIn),
        Just(SetPredicate::Equals),
        Just(SetPredicate::IntersectsNonempty),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine output is identical across all `Strategy` variants on
    /// random expressions and databases.
    #[test]
    fn engine_output_identical_across_strategies(e in arb_expr(), db in arb_db()) {
        let run = |s: Strategy| {
            Engine::new(db.clone()).strategy(s).query(e.clone()).run().unwrap().relation
        };
        let reference = run(Strategy::Reference);
        prop_assert_eq!(&run(Strategy::Planned), &reference, "planned vs reference on {}", e);
        prop_assert_eq!(&run(Strategy::Naive), &reference, "naive vs reference on {}", e);
    }

    /// Optimization at any level never changes any strategy's output.
    #[test]
    fn engine_output_stable_under_optimization(e in arb_expr(), db in arb_db()) {
        let base = Engine::new(db.clone()).query(e.clone()).run().unwrap().relation;
        for level in [OptimizeLevel::Structural, OptimizeLevel::Full] {
            for strategy in [Strategy::Planned, Strategy::Naive] {
                let out = Engine::new(db.clone())
                    .optimize(level)
                    .strategy(strategy)
                    .query(e.clone())
                    .run()
                    .unwrap();
                prop_assert_eq!(&out.relation, &base, "{} at {}/{}", e, level, strategy);
            }
        }
    }

    /// Every registered set-join algorithm (and the auto selector) agrees
    /// with the nested-loop baseline on random inputs and predicates —
    /// through the engine's registry routing.
    #[test]
    fn registered_set_join_algorithms_agree(
        r in arb_pairs(5, 8, 20),
        s in arb_pairs(5, 8, 20),
        pred in arb_predicate(),
    ) {
        let want = sj_setjoin::nested_loop_set_join(&r, &s, pred);
        let mut db = Database::new();
        db.set("R", r);
        db.set("S", s);
        let engine = Engine::new(db);
        for alg in Registry::standard().set_join_algorithms() {
            if !alg.supports(pred) {
                continue;
            }
            let out = engine
                .clone()
                .algorithm(AlgorithmChoice::named(alg.name()))
                .set_join("R", "S", pred)
                .unwrap();
            prop_assert_eq!(&out.relation, &want, "{} on {:?}", out.algorithm, pred);
        }
        let auto = engine.set_join("R", "S", pred).unwrap();
        prop_assert_eq!(&auto.relation, &want, "auto={} on {:?}", auto.algorithm, pred);
    }

    /// Every registered division algorithm (and the auto selector) agrees
    /// on random inputs, both semantics.
    #[test]
    fn registered_division_algorithms_agree(
        r in arb_pairs(6, 6, 24),
        s in arb_divisor(),
    ) {
        let mut db = Database::new();
        db.set("R", r.clone());
        db.set("S", s.clone());
        let engine = Engine::new(db);
        for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
            let want = divide(&r, &s, sem);
            for alg in Registry::standard().division_algorithms() {
                let out = engine
                    .clone()
                    .algorithm(AlgorithmChoice::named(alg.name()))
                    .divide("R", "S", sem)
                    .unwrap();
                prop_assert_eq!(&out.relation, &want, "{} under {:?}", out.algorithm, sem);
            }
            let auto = engine.divide("R", "S", sem).unwrap();
            prop_assert_eq!(&auto.relation, &want, "auto={} under {:?}", auto.algorithm, sem);
        }
    }

    /// Instrumented runs return the same relation as bare runs, and the
    /// report's result matches.
    #[test]
    fn instrumentation_never_changes_results(e in arb_expr(), db in arb_db()) {
        for strategy in [Strategy::Planned, Strategy::Naive] {
            let bare = Engine::new(db.clone()).strategy(strategy).query(e.clone()).run().unwrap();
            let inst = Engine::new(db.clone())
                .strategy(strategy)
                .instrument(Instrument::Cardinalities)
                .query(e.clone())
                .run()
                .unwrap();
            prop_assert_eq!(&inst.relation, &bare.relation);
            prop_assert_eq!(inst.report.unwrap().result(), &bare.relation);
        }
    }
}
