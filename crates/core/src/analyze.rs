//! The dichotomy analyzer: classify an RA expression as **linear** (with
//! an SA= equivalent, per Theorem 18) or **quadratic** (with a Lemma 24
//! witness), following the structure of the paper's proof.
//!
//! Exact linearity of an arbitrary RA expression is a semantic property;
//! the analyzer combines the two constructive halves of the proof:
//!
//! * the **rewriter** ([`crate::rewrite::to_sa_eq`]) succeeds on joins
//!   whose free-value condition holds for syntactic reasons → `Linear`,
//!   with the SA= equivalent as certificate;
//! * the **witness search** evaluates every join node on seed databases
//!   and looks for a joining pair with both free-value sets nonempty — the
//!   hypothesis of Lemma 24 → `Quadratic`, with the witness as
//!   certificate (feed it to [`crate::pump::Pump`] to *measure* the n²
//!   blow-up);
//! * neither applies → `Undetermined` (more seeds may decide it).

use crate::error::CoreError;
use crate::freevals::{free_values_left, free_values_right};
use crate::pump::Pump;
use crate::rewrite::to_sa_eq;
use sj_algebra::{Condition, Expr};
use sj_eval::evaluate;
use sj_storage::{Database, Schema, Tuple, Value};

/// A Lemma 24 witness extracted from a concrete database.
#[derive(Debug, Clone)]
pub struct QuadraticWitness {
    /// Pre-order id of the witnessed join node within the root expression.
    pub node_id: usize,
    /// The join condition θ of that node.
    pub theta: Condition,
    /// The witnessing database `D`.
    pub db: Database,
    /// The joining pair with nonempty free-value sets.
    pub a: Tuple,
    /// Right tuple of the pair.
    pub b: Tuple,
    /// `F₁ᴱ(ā)` — nonempty.
    pub f1: Vec<Value>,
    /// `F₂ᴱ(b̄)` — nonempty.
    pub f2: Vec<Value>,
}

impl QuadraticWitness {
    /// Instantiate the pump construction for this witness (integer
    /// universes only).
    pub fn pump(&self, constants: &[Value], max_n: usize) -> Result<Pump, CoreError> {
        Pump::new(&self.db, &self.theta, &self.a, &self.b, constants, max_n)
    }
}

/// The analyzer's verdict.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The expression is linear; `sa_equivalent` is an SA= expression
    /// computing the same query (Theorem 18's conclusion).
    Linear {
        /// The equivalent SA= expression.
        sa_equivalent: Expr,
    },
    /// The expression is quadratic: some join node blows up on the pumped
    /// family built from `witness` (Lemma 24).
    Quadratic {
        /// The extracted witness.
        witness: Box<QuadraticWitness>,
    },
    /// Neither certificate was found with the given seeds.
    Undetermined,
}

impl Verdict {
    /// Convenience predicate.
    pub fn is_linear(&self) -> bool {
        matches!(self, Verdict::Linear { .. })
    }

    /// Convenience predicate.
    pub fn is_quadratic(&self) -> bool {
        matches!(self, Verdict::Quadratic { .. })
    }
}

/// Classify `e` over `schema`, using `seeds` for the witness search.
///
/// Grouping (extended RA) is rejected — the dichotomy theorem is about RA.
pub fn analyze(e: &Expr, schema: &Schema, seeds: &[Database]) -> Result<Verdict, CoreError> {
    e.arity(schema)?;
    if e.is_extended() {
        return Err(CoreError::NotLinearSafe(
            "the dichotomy theorem applies to RA; grouping is the Section 5 \
             extension"
                .into(),
        ));
    }
    // Half 1: the Theorem 18 rewriting.
    if let Ok(sa) = to_sa_eq(e, schema) {
        return Ok(Verdict::Linear { sa_equivalent: sa });
    }
    // Half 2: Lemma 24 witness search on the seeds.
    if let Some(witness) = find_witness(e, schema, seeds)? {
        return Ok(Verdict::Quadratic {
            witness: Box::new(witness),
        });
    }
    Ok(Verdict::Undetermined)
}

/// Search every join node of `e`, on every seed, for a joining pair with
/// both free-value sets nonempty.
///
/// Lemma 24 is stated for `E₁ ⋈θ E₂` with `E₁, E₂ ∈ SA=`; the paper's
/// induction guarantees this by rewriting non-quadratic subexpressions
/// first. We mirror that: join nodes are visited children-before-parents
/// (reverse pre-order) and, in a first pass, only nodes whose operands are
/// SA=-rewritable are considered (those witnesses are *proofs*); a second
/// pass accepts any node (heuristic evidence, still measurable by
/// pumping).
pub fn find_witness(
    e: &Expr,
    schema: &Schema,
    seeds: &[Database],
) -> Result<Option<QuadraticWitness>, CoreError> {
    for require_sa_children in [true, false] {
        if let Some(w) = find_witness_pass(e, schema, seeds, require_sa_children)? {
            return Ok(Some(w));
        }
    }
    Ok(None)
}

fn find_witness_pass(
    e: &Expr,
    schema: &Schema,
    seeds: &[Database],
    require_sa_children: bool,
) -> Result<Option<QuadraticWitness>, CoreError> {
    let constants = e.constants();
    let subs = e.subexpressions();
    for (node_id, sub) in subs.iter().enumerate().rev() {
        let Expr::Join(theta, left, right) = sub else {
            continue;
        };
        if require_sa_children
            && (to_sa_eq(left, schema).is_err() || to_sa_eq(right, schema).is_err())
        {
            continue;
        }
        for db in seeds {
            // Seeds must cover the schema; skip incompatible ones.
            if e.arity(&db.schema()).is_err() {
                continue;
            }
            let _ = schema; // validated at analyze() entry
            let lrel = evaluate(left, db)?;
            let rrel = evaluate(right, db)?;
            for a in &lrel {
                let f1 = free_values_left(theta, a, &constants);
                if f1.is_empty() {
                    continue;
                }
                for b in &rrel {
                    if !theta.eval(a.values(), b.values()) {
                        continue;
                    }
                    let f2 = free_values_right(theta, b, &constants);
                    if f2.is_empty() {
                        continue;
                    }
                    return Ok(Some(QuadraticWitness {
                        node_id,
                        theta: theta.clone(),
                        db: db.clone(),
                        a: a.clone(),
                        b: b.clone(),
                        f1,
                        f2,
                    }));
                }
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_algebra::division;
    use sj_storage::Relation;

    fn div_schema() -> Schema {
        Schema::new([("R", 2), ("S", 1)])
    }

    fn div_seed() -> Database {
        let mut d = Database::new();
        d.set(
            "R",
            Relation::from_int_rows(&[&[1, 7], &[1, 8], &[2, 7], &[3, 9]]),
        );
        d.set("S", Relation::from_int_rows(&[&[7], &[8]]));
        d
    }

    #[test]
    fn division_plan_is_quadratic_with_witness() {
        let e = division::division_double_difference("R", "S");
        let verdict = analyze(&e, &div_schema(), &[div_seed()]).unwrap();
        let Verdict::Quadratic { witness } = verdict else {
            panic!("division must be classified quadratic");
        };
        // The witness pumps into an actual n² family.
        let pump = witness.pump(&[], 8).unwrap();
        let (size, pairs) = pump.verify(8);
        assert!(pairs >= 64);
        assert!(size <= pump.size_constant() * 8);
    }

    #[test]
    fn set_containment_join_plan_is_quadratic() {
        let schema = Schema::new([("R", 2), ("S", 2)]);
        let mut d = Database::new();
        d.set("R", Relation::from_int_rows(&[&[1, 7], &[2, 8]]));
        d.set("S", Relation::from_int_rows(&[&[5, 7], &[6, 8]]));
        let e = division::set_containment_join_plan("R", "S");
        let verdict = analyze(&e, &schema, &[d]).unwrap();
        assert!(verdict.is_quadratic());
    }

    #[test]
    fn linear_join_classified_linear() {
        let schema = div_schema();
        // R ⋈_{2=1} S: right side fully constrained.
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S"));
        let verdict = analyze(&e, &schema, &[div_seed()]).unwrap();
        let Verdict::Linear { sa_equivalent } = verdict else {
            panic!("constrained join must be linear");
        };
        assert!(sa_equivalent.is_sa_eq());
        // Certificate is equivalent.
        let d = div_seed();
        assert_eq!(
            evaluate(&e, &d).unwrap(),
            evaluate(&sa_equivalent, &d).unwrap()
        );
    }

    #[test]
    fn sa_expressions_are_linear() {
        let schema = Schema::new([("Likes", 2), ("Serves", 2), ("Visits", 2)]);
        let e = division::example3_lousy_bar_sa();
        let verdict = analyze(&e, &schema, &[]).unwrap();
        assert!(verdict.is_linear());
    }

    #[test]
    fn cyclic_beer_query_is_quadratic() {
        let schema = Schema::new([("Likes", 2), ("Serves", 2), ("Visits", 2)]);
        let mut d = Database::new();
        d.set("Visits", Relation::from_int_rows(&[&[1, 10]]));
        d.set("Serves", Relation::from_int_rows(&[&[10, 20]]));
        d.set("Likes", Relation::from_int_rows(&[&[1, 20]]));
        let e = division::cyclic_beer_query_ra();
        let verdict = analyze(&e, &schema, &[d]).unwrap();
        assert!(verdict.is_quadratic(), "cyclic query must be quadratic");
    }

    #[test]
    fn extended_rejected() {
        let e = division::division_counting("R", "S");
        assert!(analyze(&e, &div_schema(), &[]).is_err());
    }

    #[test]
    fn no_seeds_gives_undetermined_for_unsafe_join() {
        let schema = Schema::new([("R", 2), ("S", 2)]);
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S"));
        let verdict = analyze(&e, &schema, &[]).unwrap();
        assert!(matches!(verdict, Verdict::Undetermined));
    }

    #[test]
    fn witness_respects_join_condition() {
        let schema = Schema::new([("R", 2), ("S", 2)]);
        let mut d = Database::new();
        // No joining pairs at all: no witness despite free columns.
        d.set("R", Relation::from_int_rows(&[&[1, 7]]));
        d.set("S", Relation::from_int_rows(&[&[8, 2]]));
        let e = Expr::rel("R").join(Condition::eq(2, 1), Expr::rel("S"));
        let w = find_witness(&e, &schema, &[d]).unwrap();
        assert!(w.is_none());
    }
}
