//! A parser for the ASCII expression form produced by
//! [`crate::display::to_text`].
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr    := IDENT                                  -- relation name
//!          | "union" "(" expr "," expr ")"
//!          | "diff" "(" expr "," expr ")"
//!          | "project" "[" cols "]" "(" expr ")"
//!          | "gcount" "[" cols "]" "(" expr ")"
//!          | "select" "[" selcond "]" "(" expr ")"
//!          | "tag" "[" literal "]" "(" expr ")"
//!          | "join" "[" cond "]" "(" expr "," expr ")"
//!          | "semijoin" "[" cond "]" "(" expr "," expr ")"
//! cols    := INT ("," INT)*  | ε
//! selcond := INT "=" INT | INT "<" INT | INT "=" literal
//! cond    := "true" | atom ("," atom)*
//! atom    := INT op INT          with op ∈ { "=", "!=", "<", ">" }
//! literal := "{" "-"? INT "}"    -- integer constant
//!          | "'" chars "'"       -- string constant (no escapes)
//! ```
//!
//! Round-trip guarantee: `parse(&to_text(e)) == e` for every well-formed
//! expression (see the property test in the crate tests).

use crate::condition::{Atom, CompOp, Condition};
use crate::error::AlgebraError;
use crate::expr::{Expr, Selection};
use sj_storage::Value;

/// Parse an expression; see the module docs for the grammar.
pub fn parse(input: &str) -> Result<Expr, AlgebraError> {
    let mut p = Parser {
        input: input.as_bytes(),
        pos: 0,
    };
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> AlgebraError {
        AlgebraError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.input.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), AlgebraError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn ident(&mut self) -> Result<String, AlgebraError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.input.len() {
            let b = self.input[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start || self.input[start].is_ascii_digit() {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn integer(&mut self) -> Result<i64, AlgebraError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.input[start..self.pos]).unwrap();
        s.parse::<i64>().map_err(|_| self.err("expected integer"))
    }

    fn column(&mut self) -> Result<usize, AlgebraError> {
        let v = self.integer()?;
        usize::try_from(v).map_err(|_| self.err("column must be nonnegative"))
    }

    fn columns_until(&mut self, close: u8) -> Result<Vec<usize>, AlgebraError> {
        let mut cols = Vec::new();
        if self.peek() == Some(close) {
            return Ok(cols);
        }
        loop {
            cols.push(self.column()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        Ok(cols)
    }

    /// `{int}` or `'string'`.
    fn literal(&mut self) -> Result<Value, AlgebraError> {
        match self.peek() {
            Some(b'{') => {
                self.pos += 1;
                let v = self.integer()?;
                self.expect(b'}')?;
                Ok(Value::int(v))
            }
            Some(b'\'') => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.input.len() && self.input[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos >= self.input.len() {
                    return Err(self.err("unterminated string literal"));
                }
                let s = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
                self.pos += 1;
                Ok(Value::str(s))
            }
            _ => Err(self.err("expected literal ({int} or 'string')")),
        }
    }

    fn comp_op(&mut self) -> Result<CompOp, AlgebraError> {
        match self.peek() {
            Some(b'=') => {
                self.pos += 1;
                Ok(CompOp::Eq)
            }
            Some(b'!') => {
                self.pos += 1;
                self.expect(b'=')?;
                Ok(CompOp::Neq)
            }
            Some(b'<') => {
                self.pos += 1;
                Ok(CompOp::Lt)
            }
            Some(b'>') => {
                self.pos += 1;
                Ok(CompOp::Gt)
            }
            _ => Err(self.err("expected comparison operator")),
        }
    }

    fn condition(&mut self) -> Result<Condition, AlgebraError> {
        // "true" or atom list.
        let save = self.pos;
        if let Ok(id) = self.ident() {
            if id == "true" {
                return Ok(Condition::always());
            }
            self.pos = save;
        } else {
            self.pos = save;
        }
        let mut atoms = Vec::new();
        loop {
            let left = self.column()?;
            let op = self.comp_op()?;
            let right = self.column()?;
            atoms.push(Atom { left, op, right });
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        Ok(Condition::new(atoms))
    }

    fn selection(&mut self) -> Result<Selection, AlgebraError> {
        let i = self.column()?;
        match self.peek() {
            Some(b'=') => {
                self.pos += 1;
                match self.peek() {
                    Some(b'{') | Some(b'\'') => Ok(Selection::EqConst(i, self.literal()?)),
                    _ => Ok(Selection::Eq(i, self.column()?)),
                }
            }
            Some(b'<') => {
                self.pos += 1;
                Ok(Selection::Lt(i, self.column()?))
            }
            _ => Err(self.err("expected '=' or '<' in selection")),
        }
    }

    fn paren_args(&mut self, n: usize) -> Result<Vec<Expr>, AlgebraError> {
        self.expect(b'(')?;
        let mut args = Vec::with_capacity(n);
        for k in 0..n {
            if k > 0 {
                self.expect(b',')?;
            }
            args.push(self.expr()?);
        }
        self.expect(b')')?;
        Ok(args)
    }

    fn expr(&mut self) -> Result<Expr, AlgebraError> {
        let name = self.ident()?;
        // Operator keywords are recognized only when followed by their
        // bracket/paren syntax; otherwise the identifier is a relation name.
        match (name.as_str(), self.peek()) {
            ("union", Some(b'(')) => {
                let mut a = self.paren_args(2)?;
                let b = a.pop().unwrap();
                Ok(a.pop().unwrap().union(b))
            }
            ("diff", Some(b'(')) => {
                let mut a = self.paren_args(2)?;
                let b = a.pop().unwrap();
                Ok(a.pop().unwrap().diff(b))
            }
            ("project", Some(b'[')) => {
                self.pos += 1;
                let cols = self.columns_until(b']')?;
                self.expect(b']')?;
                let mut a = self.paren_args(1)?;
                Ok(a.pop().unwrap().project(cols))
            }
            ("gcount", Some(b'[')) => {
                self.pos += 1;
                let cols = self.columns_until(b']')?;
                self.expect(b']')?;
                let mut a = self.paren_args(1)?;
                Ok(a.pop().unwrap().group_count(cols))
            }
            ("select", Some(b'[')) => {
                self.pos += 1;
                let sel = self.selection()?;
                self.expect(b']')?;
                let mut a = self.paren_args(1)?;
                Ok(Expr::Select(sel, Box::new(a.pop().unwrap())))
            }
            ("tag", Some(b'[')) => {
                self.pos += 1;
                let v = self.literal()?;
                self.expect(b']')?;
                let mut a = self.paren_args(1)?;
                Ok(a.pop().unwrap().tag(v))
            }
            ("join", Some(b'[')) => {
                self.pos += 1;
                let cond = self.condition()?;
                self.expect(b']')?;
                let mut a = self.paren_args(2)?;
                let b = a.pop().unwrap();
                Ok(a.pop().unwrap().join(cond, b))
            }
            ("semijoin", Some(b'[')) => {
                self.pos += 1;
                let cond = self.condition()?;
                self.expect(b']')?;
                let mut a = self.paren_args(2)?;
                let b = a.pop().unwrap();
                Ok(a.pop().unwrap().semijoin(cond, b))
            }
            _ => Ok(Expr::Rel(name)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::display::to_text;

    #[test]
    fn parses_relation_name() {
        assert_eq!(parse("Visits").unwrap(), Expr::rel("Visits"));
        assert_eq!(parse("  R_1  ").unwrap(), Expr::rel("R_1"));
    }

    #[test]
    fn parses_example3() {
        let text = "project[1](semijoin[2=1](Visits, diff(project[1](Serves), \
                    project[1](semijoin[2=2](Serves, Likes)))))";
        let e = parse(text).unwrap();
        assert!(e.is_sa_eq());
        assert_eq!(to_text(&e), text);
    }

    #[test]
    fn parses_all_operators() {
        for text in [
            "union(R, S)",
            "diff(R, S)",
            "project[1,3,1](R)",
            "project[](R)",
            "select[1=2](R)",
            "select[1<2](R)",
            "select[2={-7}](R)",
            "select[2='flu'](R)",
            "tag[{5}](R)",
            "tag['x y'](R)",
            "join[true](R, S)",
            "join[1=1,2!=2,1<2,2>1](R, S)",
            "semijoin[2=1](R, S)",
            "gcount[1,2](R)",
        ] {
            let e = parse(text).unwrap_or_else(|err| panic!("{text}: {err}"));
            assert_eq!(to_text(&e), text, "round trip failed for {text}");
        }
    }

    #[test]
    fn operator_names_can_be_relation_names() {
        // "union" not followed by '(' is a relation name.
        assert_eq!(parse("union").unwrap(), Expr::rel("union"));
        assert_eq!(
            parse("diff(union, join)").unwrap(),
            Expr::rel("union").diff(Expr::rel("join"))
        );
    }

    #[test]
    fn errors_carry_offsets() {
        for bad in [
            "",
            "project[1](R",
            "join[1=](R, S)",
            "select[](R)",
            "tag[x](R)",
            "union(R)",
            "R extra",
            "tag['unterminated](R)",
            "project[-1](R)",
        ] {
            match parse(bad) {
                Err(AlgebraError::Parse { .. }) => {}
                other => panic!("expected parse error for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn whitespace_insensitive() {
        let e = parse("  join [ 1 = 1 ] ( R ,  S )  ").unwrap();
        assert_eq!(to_text(&e), "join[1=1](R, S)");
    }

    #[test]
    fn nested_deeply() {
        let mut text = String::from("R");
        for _ in 0..50 {
            text = format!("project[1](select[1=1]({text}))");
        }
        let e = parse(&text).unwrap();
        assert_eq!(e.depth(), 101);
    }
}
