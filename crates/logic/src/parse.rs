//! A parser and ASCII printer for GF formulas.
//!
//! Grammar (precedence low → high: `<->`, `->`, `|`, `&`, `!`):
//!
//! ```text
//! formula := iff
//! iff     := implies ( "<->" implies )*
//! implies := or ( "->" or )*              -- right-associative
//! or      := and ( "|" and )*
//! and     := unary ( "&" unary )*
//! unary   := "!" unary | atom
//! atom    := "true" | "false"
//!          | "exists" vars "(" IDENT "(" vars ")" "&" formula ")"
//!          | IDENT "(" vars ")"           -- relation atom
//!          | IDENT "=" (IDENT | literal)  -- x=y / x=c
//!          | IDENT "<" IDENT              -- x<y
//!          | "(" formula ")"
//! vars    := IDENT ("," IDENT)*
//! literal := "{" "-"? INT "}" | "'" chars "'"
//! ```
//!
//! [`to_ascii`] prints a formula in exactly this grammar;
//! `parse_formula(&to_ascii(f)) == f` up to connective re-association
//! (the printer parenthesizes fully, so round-tripping is exact — see the
//! property test).

use crate::error::LogicError;
use crate::formula::Formula;
use sj_storage::Value;

/// Render a formula in the parseable ASCII grammar (fully parenthesized).
pub fn to_ascii(f: &Formula) -> String {
    match f {
        Formula::Bool(true) => "true".into(),
        Formula::Bool(false) => "false".into(),
        Formula::Eq(x, y) => format!("{x}={y}"),
        Formula::Lt(x, y) => format!("{x}<{y}"),
        Formula::EqConst(x, c) => match c {
            Value::Int(i) => format!("{x}={{{i}}}"),
            Value::Str(s) => format!("{x}='{s}'"),
        },
        Formula::Rel(r, args) => format!("{r}({})", args.join(",")),
        Formula::Not(g) => format!("!({})", to_ascii(g)),
        Formula::And(a, b) => format!("({} & {})", to_ascii(a), to_ascii(b)),
        Formula::Or(a, b) => format!("({} | {})", to_ascii(a), to_ascii(b)),
        Formula::Implies(a, b) => format!("({} -> {})", to_ascii(a), to_ascii(b)),
        Formula::Iff(a, b) => format!("({} <-> {})", to_ascii(a), to_ascii(b)),
        Formula::Exists {
            vars,
            guard_rel,
            guard_args,
            body,
        } => format!(
            "exists {} ({}({}) & {})",
            vars.join(","),
            guard_rel,
            guard_args.join(","),
            to_ascii(body)
        ),
    }
}

/// Parse a GF formula from the ASCII grammar. Guardedness is *not*
/// enforced here (use [`Formula::check_guarded`]); the syntax is.
pub fn parse_formula(input: &str) -> Result<Formula, LogicError> {
    let mut p = P {
        b: input.as_bytes(),
        i: 0,
    };
    let f = p.iff()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing input"));
    }
    Ok(f)
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn err(&self, m: &str) -> LogicError {
        LogicError::Unguarded(format!("parse error at byte {}: {m}", self.i))
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, s: &str) -> bool {
        self.ws();
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), LogicError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {s:?}")))
        }
    }

    fn ident(&mut self) -> Result<String, LogicError> {
        self.ws();
        let start = self.i;
        while self.i < self.b.len()
            && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
        {
            self.i += 1;
        }
        if self.i == start || self.b[start].is_ascii_digit() {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.i]).into_owned())
    }

    fn vars(&mut self) -> Result<Vec<String>, LogicError> {
        let mut out = vec![self.ident()?];
        while self.peek() == Some(b',') {
            self.i += 1;
            out.push(self.ident()?);
        }
        Ok(out)
    }

    fn literal(&mut self) -> Result<Value, LogicError> {
        match self.peek() {
            Some(b'{') => {
                self.i += 1;
                self.ws();
                let start = self.i;
                if self.peek() == Some(b'-') {
                    self.i += 1;
                }
                while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
                    self.i += 1;
                }
                let n: i64 = std::str::from_utf8(&self.b[start..self.i])
                    .unwrap()
                    .trim()
                    .parse()
                    .map_err(|_| self.err("bad integer literal"))?;
                self.expect("}")?;
                Ok(Value::int(n))
            }
            Some(b'\'') => {
                self.i += 1;
                let start = self.i;
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    self.i += 1;
                }
                if self.i >= self.b.len() {
                    return Err(self.err("unterminated string"));
                }
                let s = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
                self.i += 1;
                Ok(Value::str(s))
            }
            _ => Err(self.err("expected literal")),
        }
    }

    fn iff(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.implies()?;
        while self.eat("<->") {
            f = f.iff(self.implies()?);
        }
        Ok(f)
    }

    fn implies(&mut self) -> Result<Formula, LogicError> {
        let f = self.or()?;
        if self.eat("->") {
            // right-associative
            Ok(f.implies(self.implies()?))
        } else {
            Ok(f)
        }
    }

    fn or(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.and()?;
        loop {
            // careful not to consume the '|' of nothing else; '|' only.
            self.ws();
            if self.b.get(self.i) == Some(&b'|') {
                self.i += 1;
                f = f.or(self.and()?);
            } else {
                return Ok(f);
            }
        }
    }

    fn and(&mut self) -> Result<Formula, LogicError> {
        let mut f = self.unary()?;
        loop {
            self.ws();
            if self.b.get(self.i) == Some(&b'&') {
                self.i += 1;
                f = f.and(self.unary()?);
            } else {
                return Ok(f);
            }
        }
    }

    fn unary(&mut self) -> Result<Formula, LogicError> {
        if self.eat("!") {
            return Ok(self.unary()?.not());
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula, LogicError> {
        if self.peek() == Some(b'(') {
            self.i += 1;
            let f = self.iff()?;
            self.expect(")")?;
            return Ok(f);
        }
        let save = self.i;
        let name = self.ident()?;
        match name.as_str() {
            "true" => return Ok(Formula::Bool(true)),
            "false" => return Ok(Formula::Bool(false)),
            "exists" => {
                let vars = self.vars()?;
                self.expect("(")?;
                let guard_rel = self.ident()?;
                self.expect("(")?;
                let guard_args = self.vars()?;
                self.expect(")")?;
                self.expect("&")?;
                let body = self.iff()?;
                self.expect(")")?;
                return Ok(Formula::Exists {
                    vars,
                    guard_rel,
                    guard_args,
                    body: Box::new(body),
                });
            }
            _ => {}
        }
        // Relation atom, equality, or comparison.
        match self.peek() {
            Some(b'(') => {
                self.i += 1;
                let args = self.vars()?;
                self.expect(")")?;
                Ok(Formula::Rel(name, args))
            }
            Some(b'=') => {
                self.i += 1;
                match self.peek() {
                    Some(b'{') | Some(b'\'') => Ok(Formula::EqConst(name, self.literal()?)),
                    _ => Ok(Formula::Eq(name, self.ident()?)),
                }
            }
            Some(b'<') => {
                // not '<->' (handled by iff); here a bare comparison
                if self.b.get(self.i + 1) == Some(&b'-') {
                    self.i = save;
                    return Err(self.err("unexpected '<-'"));
                }
                self.i += 1;
                Ok(Formula::Lt(name, self.ident()?))
            }
            _ => Err(self.err("expected '(', '=', or '<' after identifier")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::example7_lousy_bar;

    #[test]
    fn parses_example7() {
        let text = "exists y (Visits(x,y) & !(exists z (Serves(y,z) & \
                    exists w (Likes(w,z) & true))))";
        let f = parse_formula(text).unwrap();
        assert_eq!(f, example7_lousy_bar());
        assert!(f.check_guarded().is_ok());
    }

    #[test]
    fn ascii_roundtrip_examples() {
        for f in [
            Formula::Bool(true),
            Formula::Bool(false),
            Formula::Eq("x".into(), "y".into()),
            Formula::Lt("a".into(), "b".into()),
            Formula::EqConst("x".into(), Value::int(-5)),
            Formula::EqConst("x".into(), Value::str("flu season")),
            Formula::Rel("R".into(), vec!["x".into(), "x".into(), "z".into()]),
            Formula::Eq("x".into(), "y".into()).not(),
            Formula::Bool(true).and(Formula::Bool(false)),
            Formula::Bool(true).or(Formula::Bool(false)),
            Formula::Bool(true).implies(Formula::Bool(false)),
            Formula::Bool(true).iff(Formula::Bool(false)),
            example7_lousy_bar(),
        ] {
            let text = to_ascii(&f);
            let parsed = parse_formula(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(parsed, f, "round trip failed for {text}");
        }
    }

    #[test]
    fn precedence() {
        // a=b & c=d | e=f parses as ((a=b & c=d) | e=f)
        let f = parse_formula("a=b & c=d | e=f").unwrap();
        match f {
            Formula::Or(l, _) => assert!(matches!(*l, Formula::And(..))),
            other => panic!("{other:?}"),
        }
        // ! binds tighter than &
        let g = parse_formula("!a=b & c=d").unwrap();
        assert!(matches!(g, Formula::And(..)));
        // -> is right-associative
        let h = parse_formula("a=b -> c=d -> e=f").unwrap();
        match h {
            Formula::Implies(_, r) => assert!(matches!(*r, Formula::Implies(..))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        for bad in [
            "",
            "exists y Visits(x,y)",
            "R(",
            "x=",
            "x<",
            "(a=b",
            "a=b extra",
            "x={5",
            "x='oops",
            "3=x",
        ] {
            assert!(parse_formula(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_insensitive() {
        let f = parse_formula("  exists  y , z ( R ( x , y )  &  y = z )  ").unwrap();
        match f {
            Formula::Exists { vars, .. } => assert_eq!(vars, vec!["y", "z"]),
            other => panic!("{other:?}"),
        }
    }
}
