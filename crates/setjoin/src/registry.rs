//! The set-join / division **algorithm registry**: every algorithm of this
//! crate behind one trait object, with a deterministic `auto` selector.
//!
//! The paper's dichotomy is ultimately a statement about *which algorithm a
//! query processor is allowed to pick*: inside plain RA every division plan
//! is quadratic (Proposition 26), while the direct operators of this crate
//! are linear or quasilinear. The registry makes that choice a first-class,
//! inspectable object instead of a hard-wired function call:
//!
//! * [`SetJoinAlgorithm`] / [`DivisionAlgorithm`] — name, supported
//!   predicates, complexity class per Definition 16, and `run`.
//! * [`Registry`] — a named collection of algorithms;
//!   [`Registry::standard`] holds every algorithm this crate implements.
//! * [`Registry::auto_set_join`] / [`Registry::auto_division`] — pick an
//!   algorithm from the predicate and input statistics ([`Relation::len`];
//!   canonical storage order means both operands are always sorted, so the
//!   merge-based algorithms never need a sort pass).
//!
//! The free functions of [`crate::division`] and [`crate::setjoin`] remain
//! available as thin wrappers; `sj-eval`'s `Engine` routes its division and
//! set-join entry points through this registry, so swapping algorithms in
//! an experiment is a one-line configuration change.

use crate::division::{
    counting_division, hash_division, nested_loop_division, sort_merge_division, DivisionSemantics,
};
use crate::inverted::inverted_index_set_join;
use crate::parallel::{parallel_hash_division, parallel_signature_set_join};
use crate::setjoin::{
    hash_set_equality_join, intersect_join_via_equijoin, nested_loop_set_join, signature_set_join,
    SetPredicate,
};
use crate::wide_signature::wide_signature_set_join;
use sj_storage::Relation;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Asymptotic running-time class of an algorithm, in the spirit of
/// Definition 16 of the paper (which classifies *expressions* by the
/// growth of their largest intermediate; for direct algorithms the
/// analogous measure is total work in the input size `n`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub enum ComplexityClass {
    /// `O(n)` (possibly expected, for hash-based algorithms) plus output.
    Linear,
    /// `O(n log n)` plus output — the "sorting or counting tricks" of the
    /// paper's footnote 1.
    Quasilinear,
    /// `Ω(n²)` worst case — the class Proposition 26 proves unavoidable
    /// for division *inside* RA, and the best known bound for
    /// set-containment joins.
    Quadratic,
}

impl fmt::Display for ComplexityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComplexityClass::Linear => write!(f, "O(n)"),
            ComplexityClass::Quasilinear => write!(f, "O(n log n)"),
            ComplexityClass::Quadratic => write!(f, "O(n²)"),
        }
    }
}

/// A named set-join algorithm `R(A,B) ⋈_{B θ D} S(C,D)`.
///
/// Implementations must agree with [`nested_loop_set_join`] on every
/// supported predicate (cross-validated by property tests).
pub trait SetJoinAlgorithm: Send + Sync {
    /// Stable name used for registry lookup and reports.
    fn name(&self) -> &'static str;
    /// Does the algorithm implement this predicate?
    fn supports(&self, pred: SetPredicate) -> bool;
    /// Complexity class when run on `pred` (worst case over inputs).
    fn complexity(&self, pred: SetPredicate) -> ComplexityClass;
    /// Execute the set join. Callers must check [`Self::supports`] first;
    /// implementations may panic on unsupported predicates.
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation;
    /// Execute with a caller-supplied worker-count hint. Serial
    /// algorithms ignore the hint (the default); partition-parallel
    /// algorithms fan out over `workers` threads (`0` = one per CPU).
    /// Results are byte-identical for every worker count.
    fn run_with_workers(
        &self,
        r: &Relation,
        s: &Relation,
        pred: SetPredicate,
        workers: usize,
    ) -> Relation {
        let _ = workers;
        self.run(r, s, pred)
    }
}

/// A named division algorithm `R(A,B) ÷ S(B)` (both semantics).
///
/// Implementations must agree with the brute-force oracle on both
/// [`DivisionSemantics`] variants (cross-validated by property tests).
pub trait DivisionAlgorithm: Send + Sync {
    /// Stable name used for registry lookup and reports.
    fn name(&self) -> &'static str;
    /// Complexity class under `sem` (worst case over inputs).
    fn complexity(&self, sem: DivisionSemantics) -> ComplexityClass;
    /// Execute the division.
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation;
    /// Execute with a caller-supplied worker-count hint (see
    /// [`SetJoinAlgorithm::run_with_workers`]; serial algorithms ignore
    /// it).
    fn run_with_workers(
        &self,
        r: &Relation,
        s: &Relation,
        sem: DivisionSemantics,
        workers: usize,
    ) -> Relation {
        let _ = workers;
        self.run(r, s, sem)
    }
}

// ---------------------------------------------------------------------------
// Set-join algorithm implementations (wrapping the crate's free functions)
// ---------------------------------------------------------------------------

/// [`nested_loop_set_join`]: every group pair verified exactly.
pub struct NestedLoopSetJoin;

impl SetJoinAlgorithm for NestedLoopSetJoin {
    fn name(&self) -> &'static str {
        "nested-loop"
    }
    fn supports(&self, _pred: SetPredicate) -> bool {
        true
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        nested_loop_set_join(r, s, pred)
    }
}

/// [`signature_set_join`]: 64-bit Bloom signatures prune pairs before the
/// exact merge verification.
pub struct SignatureSetJoin;

impl SetJoinAlgorithm for SignatureSetJoin {
    fn name(&self) -> &'static str {
        "signature64"
    }
    fn supports(&self, _pred: SetPredicate) -> bool {
        true
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        // Same worst case as nested loops; the filter is a constant factor.
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        signature_set_join(r, s, pred)
    }
}

/// [`wide_signature_set_join`] with a configurable signature width. The
/// reported name tracks the width (`signature128`, `signature256`, …), so
/// a re-registered variant never masquerades as the standard entry.
pub struct WideSignatureSetJoin {
    /// Signature width in 64-bit words.
    pub words: usize,
}

impl SetJoinAlgorithm for WideSignatureSetJoin {
    fn name(&self) -> &'static str {
        // `words == 1` deliberately does NOT reuse "signature64": that
        // name belongs to [`SignatureSetJoin`], and the wide variant must
        // never shadow it.
        match self.words {
            2 => "signature128",
            4 => "signature256",
            8 => "signature512",
            _ => "signature-wide",
        }
    }
    fn supports(&self, pred: SetPredicate) -> bool {
        matches!(
            pred,
            SetPredicate::Contains | SetPredicate::ContainedIn | SetPredicate::Equals
        )
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        wide_signature_set_join(r, s, pred, self.words)
    }
}

/// [`inverted_index_set_join`]: per-element postings intersection; only the
/// set-containment direction `B ⊇ D`.
pub struct InvertedIndexSetJoin;

impl SetJoinAlgorithm for InvertedIndexSetJoin {
    fn name(&self) -> &'static str {
        "inverted-index"
    }
    fn supports(&self, pred: SetPredicate) -> bool {
        pred == SetPredicate::Contains
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        assert_eq!(pred, SetPredicate::Contains, "inverted-index: ⊇ only");
        inverted_index_set_join(r, s)
    }
}

/// [`hash_set_equality_join`]: hash each group's canonical value list;
/// set-equality only.
pub struct HashSetEqualityJoin;

impl SetJoinAlgorithm for HashSetEqualityJoin {
    fn name(&self) -> &'static str {
        "hash-set-equality"
    }
    fn supports(&self, pred: SetPredicate) -> bool {
        pred == SetPredicate::Equals
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        ComplexityClass::Quasilinear
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        assert_eq!(pred, SetPredicate::Equals, "hash-set-equality: = only");
        hash_set_equality_join(r, s)
    }
}

/// [`intersect_join_via_equijoin`]: the `∩ ≠ ∅` predicate as an ordinary
/// equijoin — the paper's remark made executable.
pub struct EquijoinIntersect;

impl SetJoinAlgorithm for EquijoinIntersect {
    fn name(&self) -> &'static str {
        "equijoin-intersect"
    }
    fn supports(&self, pred: SetPredicate) -> bool {
        pred == SetPredicate::IntersectsNonempty
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        ComplexityClass::Linear
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        assert_eq!(
            pred,
            SetPredicate::IntersectsNonempty,
            "equijoin-intersect: ∩≠∅ only"
        );
        intersect_join_via_equijoin(r, s)
    }
}

/// [`parallel_signature_set_join`]: the partition-based set join —
/// groups partitioned by anchor element, signature-filtered exact tests
/// per partition, fanned out over scoped worker threads. Same worst case
/// as the monolithic signature join, but the partitioning prunes the
/// candidate pair space even at one worker.
pub struct ParallelSignatureSetJoin {
    /// Worker threads; `0` = one per available CPU (capped at 8).
    pub threads: usize,
}

impl SetJoinAlgorithm for ParallelSignatureSetJoin {
    fn name(&self) -> &'static str {
        "parallel-signature"
    }
    fn supports(&self, pred: SetPredicate) -> bool {
        // ∩ ≠ ∅ has no anchor element; it is an equijoin anyway.
        matches!(
            pred,
            SetPredicate::Contains | SetPredicate::ContainedIn | SetPredicate::Equals
        )
    }
    fn complexity(&self, _pred: SetPredicate) -> ComplexityClass {
        // All groups can share one anchor partition in the worst case.
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, pred: SetPredicate) -> Relation {
        parallel_signature_set_join(r, s, pred, self.threads)
    }
    fn run_with_workers(
        &self,
        r: &Relation,
        s: &Relation,
        pred: SetPredicate,
        workers: usize,
    ) -> Relation {
        parallel_signature_set_join(r, s, pred, workers)
    }
}

// ---------------------------------------------------------------------------
// Division algorithm implementations
// ---------------------------------------------------------------------------

/// [`nested_loop_division`]: the deliberate quadratic baseline.
pub struct NestedLoopDivision;

impl DivisionAlgorithm for NestedLoopDivision {
    fn name(&self) -> &'static str {
        "nested-loop"
    }
    fn complexity(&self, _sem: DivisionSemantics) -> ComplexityClass {
        ComplexityClass::Quadratic
    }
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        nested_loop_division(r, s, sem)
    }
}

/// [`sort_merge_division`]: one merge pass per A-group; sort-free because
/// relations are stored in canonical order.
pub struct SortMergeDivision;

impl DivisionAlgorithm for SortMergeDivision {
    fn name(&self) -> &'static str {
        "sort-merge"
    }
    fn complexity(&self, _sem: DivisionSemantics) -> ComplexityClass {
        // Canonical storage order has already paid the sort.
        ComplexityClass::Linear
    }
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        sort_merge_division(r, s, sem)
    }
}

/// [`hash_division`]: Graefe's bitmap hash-division.
pub struct HashDivision;

impl DivisionAlgorithm for HashDivision {
    fn name(&self) -> &'static str {
        "hash"
    }
    fn complexity(&self, _sem: DivisionSemantics) -> ComplexityClass {
        ComplexityClass::Linear
    }
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        hash_division(r, s, sem)
    }
}

/// [`counting_division`]: the Section 5 grouping/counting strategy.
pub struct CountingDivision;

impl DivisionAlgorithm for CountingDivision {
    fn name(&self) -> &'static str {
        "counting"
    }
    fn complexity(&self, _sem: DivisionSemantics) -> ComplexityClass {
        ComplexityClass::Linear
    }
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        counting_division(r, s, sem)
    }
}

/// [`parallel_hash_division`]: Graefe's hash-division with the dividend
/// hash-partitioned on A across scoped worker threads.
pub struct ParallelHashDivision {
    /// Worker threads; `0` = one per available CPU (capped at 8).
    pub threads: usize,
}

impl DivisionAlgorithm for ParallelHashDivision {
    fn name(&self) -> &'static str {
        "parallel-hash"
    }
    fn complexity(&self, _sem: DivisionSemantics) -> ComplexityClass {
        ComplexityClass::Linear
    }
    fn run(&self, r: &Relation, s: &Relation, sem: DivisionSemantics) -> Relation {
        parallel_hash_division(r, s, sem, self.threads)
    }
    fn run_with_workers(
        &self,
        r: &Relation,
        s: &Relation,
        sem: DivisionSemantics,
        workers: usize,
    ) -> Relation {
        parallel_hash_division(r, s, sem, workers)
    }
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

/// A collection of set-join and division algorithms, addressable by name,
/// with a deterministic `auto` selector.
#[derive(Clone, Default)]
pub struct Registry {
    set_joins: Vec<Arc<dyn SetJoinAlgorithm>>,
    divisions: Vec<Arc<dyn DivisionAlgorithm>>,
}

/// Inputs at or below this many tuples (both operands together) skip
/// signature/hash machinery: the setup cost dominates at toy sizes.
const SMALL_INPUT: usize = 64;

/// Average group size at which the `auto` selector widens signatures from
/// one to four words (large sets saturate 64-bit signatures).
const WIDE_SET_THRESHOLD: usize = 16;

/// Combined input size (tuples, both operands) above which the `auto`
/// selectors prefer the partition-parallel set-join variant when the
/// caller signals a parallel execution context (`workers > 1`). Below
/// it, partition bookkeeping outweighs the pruning.
const PARALLEL_SETJOIN_INPUT: usize = 4096;

/// Combined input size above which the `auto` selectors prefer the
/// partition-parallel division when `workers > 1`.
const PARALLEL_DIVISION_INPUT: usize = 8192;

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The standard registry: every algorithm this crate implements.
    ///
    /// Set joins: `nested-loop`, `signature64`, `signature256`,
    /// `inverted-index`, `hash-set-equality`, `equijoin-intersect`,
    /// `parallel-signature`.
    /// Divisions: `nested-loop`, `sort-merge`, `hash`, `counting`,
    /// `parallel-hash`.
    pub fn standard() -> &'static Registry {
        Self::standard_cell()
    }

    /// The standard registry as a shared handle — the same process-wide
    /// instance [`Registry::standard`] borrows, never a copy. This is
    /// what `sj-eval`'s `Engine` holds by default.
    pub fn standard_shared() -> Arc<Registry> {
        Self::standard_cell().clone()
    }

    fn standard_cell() -> &'static Arc<Registry> {
        static STANDARD: OnceLock<Arc<Registry>> = OnceLock::new();
        STANDARD.get_or_init(|| {
            let mut reg = Registry::new();
            reg.register_set_join(Arc::new(NestedLoopSetJoin));
            reg.register_set_join(Arc::new(SignatureSetJoin));
            reg.register_set_join(Arc::new(WideSignatureSetJoin { words: 4 }));
            reg.register_set_join(Arc::new(InvertedIndexSetJoin));
            reg.register_set_join(Arc::new(HashSetEqualityJoin));
            reg.register_set_join(Arc::new(EquijoinIntersect));
            reg.register_set_join(Arc::new(ParallelSignatureSetJoin { threads: 0 }));
            reg.register_division(Arc::new(NestedLoopDivision));
            reg.register_division(Arc::new(SortMergeDivision));
            reg.register_division(Arc::new(HashDivision));
            reg.register_division(Arc::new(CountingDivision));
            reg.register_division(Arc::new(ParallelHashDivision { threads: 0 }));
            Arc::new(reg)
        })
    }

    /// Add a set-join algorithm. Last registration wins on name clashes
    /// (lookup scans from the back), so callers can shadow a standard
    /// algorithm with a tuned variant.
    pub fn register_set_join(&mut self, alg: Arc<dyn SetJoinAlgorithm>) {
        self.set_joins.push(alg);
    }

    /// Add a division algorithm (same shadowing rule).
    pub fn register_division(&mut self, alg: Arc<dyn DivisionAlgorithm>) {
        self.divisions.push(alg);
    }

    /// All registered set-join algorithms, in registration order.
    pub fn set_join_algorithms(&self) -> &[Arc<dyn SetJoinAlgorithm>] {
        &self.set_joins
    }

    /// All registered division algorithms, in registration order.
    pub fn division_algorithms(&self) -> &[Arc<dyn DivisionAlgorithm>] {
        &self.divisions
    }

    /// Look up a set-join algorithm by name.
    pub fn find_set_join(&self, name: &str) -> Option<Arc<dyn SetJoinAlgorithm>> {
        self.set_joins
            .iter()
            .rev()
            .find(|a| a.name() == name)
            .cloned()
    }

    /// Look up a division algorithm by name.
    pub fn find_division(&self, name: &str) -> Option<Arc<dyn DivisionAlgorithm>> {
        self.divisions
            .iter()
            .rev()
            .find(|a| a.name() == name)
            .cloned()
    }

    /// Pick a set-join algorithm from the predicate and input statistics.
    ///
    /// Deterministic rules, in order:
    ///
    /// 1. `=` → `hash-set-equality` (quasilinear beats any pair scan).
    /// 2. `∩ ≠ ∅` → `equijoin-intersect` (the paper's equijoin remark).
    /// 3. Tiny inputs (≤ 64 tuples total) → `nested-loop`: signature
    ///    setup costs more than it saves.
    /// 4. Large average group size (≥ 16 values) → `signature256`:
    ///    64-bit signatures saturate and stop filtering.
    /// 5. Otherwise → `signature64`.
    ///
    /// Returns `None` only when the registry lacks an algorithm for the
    /// predicate (never for [`Registry::standard`]).
    pub fn auto_set_join(
        &self,
        r: &Relation,
        s: &Relation,
        pred: SetPredicate,
    ) -> Option<Arc<dyn SetJoinAlgorithm>> {
        self.auto_set_join_with(r, s, pred, 1)
    }

    /// [`Registry::auto_set_join`] with a parallel-context hint: when the
    /// caller will execute with `workers > 1` threads (the `Engine`
    /// passes its parallelism degree) and the containment input is large
    /// (≥ 4096 tuples combined), the partition-parallel
    /// `parallel-signature` variant is preferred — the anchor-element
    /// partitioning both prunes candidate pairs and gives the workers
    /// independent shards. `workers ≤ 1` reproduces the serial choice
    /// exactly; `=` and `∩ ≠ ∅` keep their dedicated (quasi)linear
    /// algorithms at every worker count.
    pub fn auto_set_join_with(
        &self,
        r: &Relation,
        s: &Relation,
        pred: SetPredicate,
        workers: usize,
    ) -> Option<Arc<dyn SetJoinAlgorithm>> {
        let pick = |name: &str| self.find_set_join(name).filter(|a| a.supports(pred));
        let fallback = || {
            self.set_joins
                .iter()
                .rev()
                .find(|a| a.supports(pred))
                .cloned()
        };
        let n = r.len() + s.len();
        let preferred = match pred {
            SetPredicate::Equals => pick("hash-set-equality"),
            SetPredicate::IntersectsNonempty => pick("equijoin-intersect"),
            SetPredicate::Contains | SetPredicate::ContainedIn => {
                if workers > 1 && n >= PARALLEL_SETJOIN_INPUT {
                    pick("parallel-signature")
                } else if n <= SMALL_INPUT {
                    pick("nested-loop")
                } else if avg_group_size(r).max(avg_group_size(s)) >= WIDE_SET_THRESHOLD {
                    pick("signature256")
                } else {
                    pick("signature64")
                }
            }
        };
        preferred.or_else(fallback)
    }

    /// Pick a division algorithm from the semantics and input statistics.
    ///
    /// Deterministic rules, in order:
    ///
    /// 1. Tiny inputs (≤ 64 tuples total) → `sort-merge`: canonical
    ///    storage order makes it sort-free, and it allocates nothing.
    /// 2. Equality semantics → `counting` (group sizes fall out of the
    ///    single counting pass).
    /// 3. Otherwise → `hash` (Graefe's bitmap division).
    ///
    /// Returns `None` only for an empty registry.
    pub fn auto_division(
        &self,
        r: &Relation,
        s: &Relation,
        sem: DivisionSemantics,
    ) -> Option<Arc<dyn DivisionAlgorithm>> {
        self.auto_division_with(r, s, sem, 1)
    }

    /// [`Registry::auto_division`] with a parallel-context hint: with
    /// `workers > 1` and a large dividend (≥ 8192 tuples combined) the
    /// hash-partitioned `parallel-hash` variant is preferred so the
    /// build/probe pass shards across the worker threads. `workers ≤ 1`
    /// reproduces the serial choice exactly.
    pub fn auto_division_with(
        &self,
        r: &Relation,
        s: &Relation,
        sem: DivisionSemantics,
        workers: usize,
    ) -> Option<Arc<dyn DivisionAlgorithm>> {
        let pick = |name: &str| self.find_division(name);
        let preferred = if workers > 1 && r.len() + s.len() >= PARALLEL_DIVISION_INPUT {
            pick("parallel-hash")
        } else if r.len() + s.len() <= SMALL_INPUT {
            pick("sort-merge")
        } else if sem == DivisionSemantics::Equality {
            pick("counting")
        } else {
            pick("hash")
        };
        preferred.or_else(|| self.divisions.last().cloned())
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field(
                "set_joins",
                &self.set_joins.iter().map(|a| a.name()).collect::<Vec<_>>(),
            )
            .field(
                "divisions",
                &self.divisions.iter().map(|a| a.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Average number of values per group of a binary relation (0 when empty).
fn avg_group_size(r: &Relation) -> usize {
    // Canonical storage order keeps equal keys adjacent: counting group
    // boundaries is one allocation-free scan (materializing `group_sets`
    // here would clone every value just to take a length).
    let mut groups = 0usize;
    let mut prev = None;
    for t in r {
        if prev != Some(&t[0]) {
            groups += 1;
            prev = Some(&t[0]);
        }
    }
    r.len().checked_div(groups).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_storage::{Relation, Tuple};

    fn pairs(rows: &[[i64; 2]]) -> Relation {
        Relation::from_tuples(2, rows.iter().map(|r| Tuple::from_ints(r))).unwrap()
    }

    #[test]
    fn standard_registry_has_all_algorithms() {
        let reg = Registry::standard();
        assert_eq!(reg.set_join_algorithms().len(), 7);
        assert_eq!(reg.division_algorithms().len(), 5);
        for name in [
            "nested-loop",
            "signature64",
            "signature256",
            "inverted-index",
            "hash-set-equality",
            "equijoin-intersect",
            "parallel-signature",
        ] {
            assert!(reg.find_set_join(name).is_some(), "{name}");
        }
        for name in [
            "nested-loop",
            "sort-merge",
            "hash",
            "counting",
            "parallel-hash",
        ] {
            assert!(reg.find_division(name).is_some(), "{name}");
        }
        assert!(reg.find_set_join("no-such").is_none());
        assert!(reg.find_division("no-such").is_none());
    }

    #[test]
    fn every_registered_algorithm_matches_the_baseline() {
        let r = pairs(&[[1, 10], [1, 11], [2, 10], [3, 12], [3, 13]]);
        let s = pairs(&[[5, 10], [5, 11], [6, 10], [7, 13]]);
        let reg = Registry::standard();
        for pred in [
            SetPredicate::Contains,
            SetPredicate::ContainedIn,
            SetPredicate::Equals,
            SetPredicate::IntersectsNonempty,
        ] {
            let want = nested_loop_set_join(&r, &s, pred);
            for alg in reg.set_join_algorithms() {
                if alg.supports(pred) {
                    assert_eq!(alg.run(&r, &s, pred), want, "{} on {pred:?}", alg.name());
                }
            }
        }
        let divisor = Relation::from_int_rows(&[&[10], &[11]]);
        for sem in [DivisionSemantics::Containment, DivisionSemantics::Equality] {
            let want = crate::division::divide(&r, &divisor, sem);
            for alg in reg.division_algorithms() {
                assert_eq!(alg.run(&r, &divisor, sem), want, "{} {sem:?}", alg.name());
            }
        }
    }

    #[test]
    fn auto_set_join_picks_by_predicate() {
        let reg = Registry::standard();
        let r = pairs(&[[1, 10], [1, 11]]);
        let s = pairs(&[[5, 10]]);
        assert_eq!(
            reg.auto_set_join(&r, &s, SetPredicate::Equals)
                .unwrap()
                .name(),
            "hash-set-equality"
        );
        assert_eq!(
            reg.auto_set_join(&r, &s, SetPredicate::IntersectsNonempty)
                .unwrap()
                .name(),
            "equijoin-intersect"
        );
        // Tiny containment input → nested loops.
        assert_eq!(
            reg.auto_set_join(&r, &s, SetPredicate::Contains)
                .unwrap()
                .name(),
            "nested-loop"
        );
    }

    #[test]
    fn auto_set_join_scales_with_input_stats() {
        let reg = Registry::standard();
        // > SMALL_INPUT tuples, small groups → 64-bit signatures.
        let rows: Vec<[i64; 2]> = (0..60).flat_map(|g| [[g, 2 * g], [g, 2 * g + 1]]).collect();
        let big = pairs(&rows);
        assert_eq!(
            reg.auto_set_join(&big, &big, SetPredicate::Contains)
                .unwrap()
                .name(),
            "signature64"
        );
        // Wide groups (≥ WIDE_SET_THRESHOLD values each) → wide signatures.
        let wide_rows: Vec<[i64; 2]> = (0..4).flat_map(|g| (0..20).map(move |v| [g, v])).collect();
        let wide = pairs(&wide_rows);
        assert_eq!(
            reg.auto_set_join(&wide, &wide, SetPredicate::Contains)
                .unwrap()
                .name(),
            "signature256"
        );
    }

    #[test]
    fn auto_division_picks_by_stats_and_semantics() {
        let reg = Registry::standard();
        let small = pairs(&[[1, 7], [2, 7]]);
        let divisor = Relation::from_int_rows(&[&[7]]);
        assert_eq!(
            reg.auto_division(&small, &divisor, DivisionSemantics::Containment)
                .unwrap()
                .name(),
            "sort-merge"
        );
        let rows: Vec<[i64; 2]> = (0..200).map(|i| [i / 4, i % 4]).collect();
        let big = pairs(&rows);
        assert_eq!(
            reg.auto_division(&big, &divisor, DivisionSemantics::Containment)
                .unwrap()
                .name(),
            "hash"
        );
        assert_eq!(
            reg.auto_division(&big, &divisor, DivisionSemantics::Equality)
                .unwrap()
                .name(),
            "counting"
        );
    }

    #[test]
    fn auto_with_workers_prefers_parallel_variants_on_large_inputs() {
        let reg = Registry::standard();
        // Fig-scale containment input: > PARALLEL_SETJOIN_INPUT tuples.
        let rows: Vec<[i64; 2]> = (0..1200)
            .flat_map(|g| (0..2).map(move |v| [g, v]))
            .collect();
        let big = pairs(&rows);
        assert_eq!(
            reg.auto_set_join_with(&big, &big, SetPredicate::Contains, 4)
                .unwrap()
                .name(),
            "parallel-signature"
        );
        // Same input, serial context: the serial pick is unchanged.
        assert_eq!(
            reg.auto_set_join_with(&big, &big, SetPredicate::Contains, 1)
                .unwrap()
                .name(),
            reg.auto_set_join(&big, &big, SetPredicate::Contains)
                .unwrap()
                .name()
        );
        // Equality keeps its dedicated quasilinear algorithm even in a
        // parallel context.
        assert_eq!(
            reg.auto_set_join_with(&big, &big, SetPredicate::Equals, 8)
                .unwrap()
                .name(),
            "hash-set-equality"
        );
        // Division: large dividend + workers ⇒ parallel-hash; serial
        // context unchanged.
        let drows: Vec<[i64; 2]> = (0..10_000).map(|i| [i / 4, i % 4]).collect();
        let dividend = pairs(&drows);
        let divisor = Relation::from_int_rows(&[&[0], &[1]]);
        assert_eq!(
            reg.auto_division_with(&dividend, &divisor, DivisionSemantics::Containment, 4)
                .unwrap()
                .name(),
            "parallel-hash"
        );
        assert_eq!(
            reg.auto_division_with(&dividend, &divisor, DivisionSemantics::Containment, 1)
                .unwrap()
                .name(),
            "hash"
        );
        // Small inputs never trigger the parallel variants, whatever the
        // worker count.
        let small = pairs(&[[1, 7], [2, 7]]);
        assert_eq!(
            reg.auto_division_with(&small, &divisor, DivisionSemantics::Containment, 8)
                .unwrap()
                .name(),
            "sort-merge"
        );
    }

    #[test]
    fn run_with_workers_defaults_to_run_for_serial_algorithms() {
        let reg = Registry::standard();
        let r = pairs(&[[1, 10], [1, 11], [2, 10]]);
        let s = pairs(&[[5, 10], [5, 11]]);
        for alg in reg.set_join_algorithms() {
            if alg.supports(SetPredicate::Contains) {
                assert_eq!(
                    alg.run_with_workers(&r, &s, SetPredicate::Contains, 4),
                    alg.run(&r, &s, SetPredicate::Contains),
                    "{}",
                    alg.name()
                );
            }
        }
        let divisor = Relation::from_int_rows(&[&[10], &[11]]);
        for alg in reg.division_algorithms() {
            assert_eq!(
                alg.run_with_workers(&r, &divisor, DivisionSemantics::Containment, 4),
                alg.run(&r, &divisor, DivisionSemantics::Containment),
                "{}",
                alg.name()
            );
        }
    }

    #[test]
    fn auto_never_picks_an_unsupported_algorithm() {
        let reg = Registry::standard();
        let r = pairs(&[[1, 10]]);
        for pred in [
            SetPredicate::Contains,
            SetPredicate::ContainedIn,
            SetPredicate::Equals,
            SetPredicate::IntersectsNonempty,
        ] {
            let alg = reg.auto_set_join(&r, &r, pred).unwrap();
            assert!(alg.supports(pred), "{} vs {pred:?}", alg.name());
        }
    }

    #[test]
    fn registration_shadows_by_name() {
        struct Always;
        impl SetJoinAlgorithm for Always {
            fn name(&self) -> &'static str {
                "nested-loop"
            }
            fn supports(&self, _p: SetPredicate) -> bool {
                true
            }
            fn complexity(&self, _p: SetPredicate) -> ComplexityClass {
                ComplexityClass::Linear
            }
            fn run(&self, r: &Relation, _s: &Relation, _p: SetPredicate) -> Relation {
                r.clone()
            }
        }
        let mut reg = Registry::standard().clone();
        reg.register_set_join(Arc::new(Always));
        let got = reg.find_set_join("nested-loop").unwrap();
        assert_eq!(
            got.complexity(SetPredicate::Contains),
            ComplexityClass::Linear,
            "later registration must shadow the standard entry"
        );
    }

    #[test]
    fn wide_signature_name_tracks_width() {
        assert_eq!(WideSignatureSetJoin { words: 2 }.name(), "signature128");
        assert_eq!(WideSignatureSetJoin { words: 4 }.name(), "signature256");
        assert_eq!(WideSignatureSetJoin { words: 3 }.name(), "signature-wide");
        // A one-word wide signature must not shadow the standard entry.
        assert_eq!(WideSignatureSetJoin { words: 1 }.name(), "signature-wide");
    }

    #[test]
    fn complexity_classes_render() {
        assert_eq!(ComplexityClass::Linear.to_string(), "O(n)");
        assert_eq!(ComplexityClass::Quasilinear.to_string(), "O(n log n)");
        assert_eq!(ComplexityClass::Quadratic.to_string(), "O(n²)");
        assert!(ComplexityClass::Linear < ComplexityClass::Quadratic);
    }
}
