//! # sj-storage — relational storage substrate
//!
//! This crate provides the data model underlying the reproduction of
//! Leinders & Van den Bussche, *"On the complexity of division and set joins
//! in the relational algebra"* (PODS 2005 / JCSS 2007).
//!
//! The paper works over an infinite, **totally ordered** universe `U` of
//! basic data values, finite **set-semantics** relations over `U`, and
//! databases assigning a finite relation to each relation name of a schema.
//! The corresponding types here are:
//!
//! * [`Value`] — an element of the universe `U`. Totally ordered
//!   ([`Ord`]), either an integer or a string.
//! * [`Tuple`] — a finite sequence of values, `(a₁, …, aₙ)`.
//! * [`Relation`] — a finite *set* of tuples of a fixed arity, stored
//!   canonically (sorted, deduplicated) so that set equality is structural
//!   equality and membership is a binary search. Each relation also
//!   carries a lazily built **columnar view** ([`Relation::columns`]) —
//!   typed per-column vectors with dictionary-encoded strings, chunked
//!   into [`Chunk`]s for the vectorized operators in `sj-eval` (see
//!   [`mod@column`]).
//! * [`Database`] — an assignment of relations to relation names, together
//!   with the notions the paper defines on databases: size (Definition 15 —
//!   the sum of relation cardinalities), active domain, tuple space
//!   (Definition 25) and guarded sets (Definition 9).
//! * [`Schema`] — a finite map from relation names to arities.
//!
//! In addition the crate provides substrate utilities used throughout the
//! workspace: a fast non-cryptographic hasher ([`hash::FxHasher`], the
//! FxHash algorithm), hash-based indexes on column subsets
//! ([`index::HashIndex`]), and ASCII table rendering for the `experiments`
//! binary ([`display`]).
//!
//! Everything in this crate is deterministic: iteration orders over
//! relations and databases are fully defined (sorted), so every experiment
//! in the workspace is reproducible bit-for-bit.

pub mod column;
pub mod database;
pub mod display;
pub mod error;
pub mod hash;
pub mod index;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use column::{
    Chunk, ColGather, ColSlice, ColsView, ColumnData, Columns, StrDict, DEFAULT_CHUNK_ROWS,
};
pub use database::{Database, RelationMut, Snapshot};
pub use error::StorageError;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use index::HashIndex;
pub use relation::{ensure_u32_indexable, Relation};
pub use schema::Schema;
pub use tuple::Tuple;
pub use value::Value;

/// Result alias used across the storage crate.
pub type Result<T> = std::result::Result<T, StorageError>;
