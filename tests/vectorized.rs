//! Differential suite proving **vectorized ≡ row-at-a-time**: the
//! batched operators of `sj_eval::ops_vec` must produce byte-identical
//! relations to their row-wise `sj_eval::ops` counterparts, and the
//! engine must produce byte-identical results across the full knob
//! matrix `Execution::{RowAtATime, Vectorized}` ×
//! `Threads{1, 2, 4, 8}` × chunk `{1, 3, default}` for every strategy ×
//! optimize level — on random inputs as well as on the shapes chunked
//! and partitioned execution find hardest: empty relations, single
//! rows, zipf-skewed and all-duplicate keys, and relations sized
//! exactly at, one below, and one above a chunk boundary. Since the
//! kernel layer (`sj_eval::kernel`) runs vectorized kernels *inside*
//! partitions, the worker counts here exercise the partitioned
//! gather-view kernels, not just the serial chunked ones.
//!
//! Chunk sizes under test are `{1, 3, default}` through the explicit
//! `*_chunked` entry points; CI additionally re-runs the whole suite
//! with `SETJOINS_TEST_CHUNK=1` and `=3`, which reroutes every
//! engine-level vectorized operator through degenerate chunking.
//! `SETJOINS_TEST_THREADS` narrows the worker counts exactly as in
//! `tests/parallel.rs`.

use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;
use setjoins::eval::{ops, ops_vec, Execution, Parallelism, Strategy};
use setjoins::prelude::*;
use sj_algebra::Selection;
use sj_storage::DEFAULT_CHUNK_ROWS;

/// Chunk sizes the explicit `*_chunked` calls exercise: degenerate
/// (every row its own chunk), tiny-and-odd, and the production default.
const CHUNKS: [usize; 3] = [1, 3, DEFAULT_CHUNK_ROWS];

/// Worker counts under test.
fn worker_counts() -> Vec<usize> {
    match std::env::var("SETJOINS_TEST_THREADS") {
        Ok(s) => {
            let counts: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n| n >= 1)
                .collect();
            assert!(
                !counts.is_empty(),
                "SETJOINS_TEST_THREADS={s:?} has no usable counts"
            );
            counts
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

fn pairs(rows: impl IntoIterator<Item = [i64; 2]>) -> Relation {
    Relation::from_tuples(2, rows.into_iter().map(|r| Tuple::from_ints(&r))).unwrap()
}

/// `n` rows with repeated keys and a value pattern that makes every
/// predicate under test partially selective.
fn sized(n: usize) -> Relation {
    pairs((0..n as i64).map(|i| [i % 97, i % 13]))
}

/// Chunk-boundary sizes relative to `chunk`: 0, 1, chunk−1, chunk,
/// chunk+1 (deduplicated for tiny chunks).
fn boundary_sizes(chunk: usize) -> Vec<usize> {
    let mut v = vec![0, 1, chunk.saturating_sub(1), chunk, chunk + 1];
    v.sort_unstable();
    v.dedup();
    v
}

/// Input pairs covering typed columns (int, string, mixed) and the
/// adversarial shapes of the parallel suite.
fn operand_pairs() -> Vec<(String, Relation, Relation)> {
    let mut out: Vec<(String, Relation, Relation)> = vec![
        (
            "strings".into(),
            Relation::from_str_rows(&[
                &["an", "headache"],
                &["an", "sore throat"],
                &["bob", "headache"],
                &["bob", "memory loss"],
            ]),
            Relation::from_str_rows(&[
                &["flu", "headache"],
                &["flu", "sore throat"],
                &["lyme", "memory loss"],
            ]),
        ),
        (
            "mixed-variants".into(),
            Relation::from_tuples(
                2,
                vec![tuple![1, "x"], tuple![1, 7], tuple![2, "y"], tuple![3, 7]],
            )
            .unwrap(),
            Relation::from_tuples(2, vec![tuple![1, 7], tuple![2, "x"], tuple![9, "y"]]).unwrap(),
        ),
        (
            "skewed".into(),
            pairs((0..60).map(|i| [7, i])),
            pairs((0..40).map(|i| [i % 5, 7])),
        ),
        (
            // Harmonic key frequencies (rank-r key appears ~n/r times):
            // one partition carries most rows, the tail is singletons.
            "zipf-skewed".into(),
            pairs((0..120).map(|i| [120 / (i + 1), i % 11])),
            pairs((0..80).map(|i| [80 / (i + 1), i % 7])),
        ),
        (
            "all-duplicate".into(),
            pairs((0..50).map(|_| [3, 9])),
            pairs((0..30).map(|_| [3, 9])),
        ),
        ("empty-left".into(), Relation::empty(2), sized(20)),
        ("empty-right".into(), sized(20), Relation::empty(2)),
    ];
    for &chunk in &CHUNKS {
        for n in boundary_sizes(chunk) {
            out.push((
                format!("boundary-{n}-of-{chunk}"),
                sized(n),
                sized(n / 2 + 1),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Direct operator differentials at explicit chunk sizes
// ---------------------------------------------------------------------------

/// Chunked selection ≡ row selection, every chunk size, every predicate
/// shape, every operand — including sizes straddling each chunk boundary.
#[test]
fn vectorized_select_equals_row_select() {
    let sels = [
        Selection::Eq(1, 2),
        Selection::Lt(1, 2),
        Selection::Lt(2, 1),
        Selection::EqConst(1, Value::int(7)),
        Selection::EqConst(2, Value::str("headache")),
        Selection::EqConst(2, Value::str("absent")),
    ];
    for (name, r, s) in operand_pairs() {
        for rel in [&r, &s] {
            for sel in &sels {
                let baseline = ops::select(rel, sel);
                for &chunk in &CHUNKS {
                    assert_eq!(
                        ops_vec::select_chunked(rel, sel, chunk),
                        baseline,
                        "select {sel:?} on {name} @chunk {chunk}"
                    );
                }
            }
        }
    }
}

/// Chunked hash join/semijoin ≡ row join/semijoin, with and without
/// residual inequality atoms, across typed and mixed columns.
#[test]
fn vectorized_joins_equal_row_joins() {
    let thetas = [
        Condition::eq(1, 1),
        Condition::eq(2, 2),
        Condition::new(vec![
            sj_algebra::Atom {
                left: 1,
                op: sj_algebra::CompOp::Eq,
                right: 1,
            },
            sj_algebra::Atom {
                left: 2,
                op: sj_algebra::CompOp::Lt,
                right: 2,
            },
        ]),
        Condition::lt(1, 1), // no equality atom: falls back to the row path
    ];
    for (name, r, s) in operand_pairs() {
        for theta in &thetas {
            let join_base = ops::join(&r, &s, theta);
            let semi_base = ops::semijoin(&r, &s, theta);
            for &chunk in &CHUNKS {
                assert_eq!(
                    ops_vec::join_chunked(&r, &s, theta, chunk),
                    join_base,
                    "join {theta} on {name} @chunk {chunk}"
                );
                assert_eq!(
                    ops_vec::semijoin_chunked(&r, &s, theta, chunk),
                    semi_base,
                    "semijoin {theta} on {name} @chunk {chunk}"
                );
            }
        }
    }
}

/// Columnar merge join/semijoin ≡ row merge join/semijoin on the
/// canonical sort prefix.
#[test]
fn vectorized_merges_equal_row_merges() {
    let residuals = [
        Condition::always(),
        Condition::new(vec![sj_algebra::Atom {
            left: 2,
            op: sj_algebra::CompOp::Lt,
            right: 2,
        }]),
    ];
    for (name, r, s) in operand_pairs() {
        for residual in &residuals {
            assert_eq!(
                ops_vec::merge_join(&r, &s, 1, residual),
                ops::merge_join(&r, &s, 1, residual),
                "merge join on {name} residual {residual}"
            );
            assert_eq!(
                ops_vec::merge_semijoin(&r, &s, 1, residual),
                ops::merge_semijoin(&r, &s, 1, residual),
                "merge semijoin on {name} residual {residual}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Engine end to end: Execution knob differential
// ---------------------------------------------------------------------------

/// Queries exercising every operator the vectorized path touches.
fn engine_queries() -> Vec<Expr> {
    vec![
        Expr::rel("R").select_eq(1, 2),
        Expr::rel("R").select_lt(1, 2),
        Expr::rel("R")
            .join(Condition::eq(1, 1), Expr::rel("S"))
            .project([1, 2]),
        Expr::rel("R")
            .join(Condition::eq(2, 1), Expr::rel("S"))
            .project([2, 1]),
        Expr::rel("R").semijoin(Condition::eq(1, 1), Expr::rel("S")),
        Expr::rel("R").semijoin(Condition::lt(1, 2), Expr::rel("S")),
        sj_algebra::division::division_double_difference("R", "T"),
        sj_algebra::division::division_counting("R", "T"),
    ]
}

/// Every strategy × optimize level × worker count: `Execution::Vectorized`
/// byte-identical to `Execution::RowAtATime`, on a real workload and on
/// every adversarial operand pair.
#[test]
fn engine_vectorized_equals_row_at_a_time() {
    use sj_workload::{DivisionWorkload, ElementDist, SetJoinWorkload, SetSizeDist};
    let workload_db = {
        let div = DivisionWorkload {
            groups: 150,
            divisor_size: 6,
            containment_fraction: 0.4,
            extra_per_group: 2,
            noise_domain: 48,
            seed: 0xD1FFE4E7,
        }
        .database();
        let (s, _) = SetJoinWorkload {
            r_groups: 80,
            s_groups: 80,
            set_size: SetSizeDist::Uniform(2, 6),
            domain: 32,
            elements: ElementDist::Uniform,
            seed: 0x5E7D1FF,
        }
        .generate();
        let mut db = Database::new();
        db.set("R", div.get("R").unwrap().clone());
        db.set("T", div.get("S").unwrap().clone());
        db.set("S", s);
        db
    };
    let mut dbs: Vec<(String, Database)> = vec![("division-workload".into(), workload_db)];
    for (name, r, s) in operand_pairs() {
        let mut db = Database::new();
        db.set("R", r);
        db.set("S", s);
        db.set("T", Relation::from_int_rows(&[&[5], &[9]]));
        dbs.push((format!("operands-{name}"), db));
    }
    for (dbname, db) in &dbs {
        for e in engine_queries() {
            for level in [OptimizeLevel::Off, OptimizeLevel::Full] {
                for strategy in [Strategy::Planned, Strategy::Naive] {
                    for &n in &worker_counts() {
                        let run = |exec: Execution| {
                            Engine::new(db.clone())
                                .optimize(level)
                                .strategy(strategy)
                                .parallelism(Parallelism::Threads(n))
                                .execution(exec)
                                .query(e.clone())
                                .run()
                                .unwrap()
                                .relation
                        };
                        assert_eq!(
                            run(Execution::Vectorized),
                            run(Execution::RowAtATime),
                            "{dbname} {e} {strategy} {level:?} @{n} workers"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

fn arb_relation(arity: usize) -> impl PropStrategy<Value = Relation> {
    proptest::collection::vec(proptest::collection::vec(0i64..6, arity), 0..14).prop_map(
        move |rows| {
            Relation::from_tuples(arity, rows.into_iter().map(|r| Tuple::from_ints(&r))).unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random relations and conditions: every chunked operator equals
    /// its row counterpart at every chunk size.
    #[test]
    fn vectorized_ops_equal_row_ops_on_random_relations(
        r in arb_relation(2),
        s in arb_relation(2),
        ci in 0usize..3,
    ) {
        let theta = [Condition::eq(1, 1), Condition::eq(2, 2), Condition::eq(2, 1)][ci].clone();
        for &chunk in &CHUNKS {
            prop_assert_eq!(
                ops_vec::join_chunked(&r, &s, &theta, chunk),
                ops::join(&r, &s, &theta),
                "join chunk {}", chunk
            );
            prop_assert_eq!(
                ops_vec::semijoin_chunked(&r, &s, &theta, chunk),
                ops::semijoin(&r, &s, &theta),
                "semijoin chunk {}", chunk
            );
            let sel = Selection::Eq(1, 2);
            prop_assert_eq!(
                ops_vec::select_chunked(&r, &sel, chunk),
                ops::select(&r, &sel),
                "select chunk {}", chunk
            );
        }
        prop_assert_eq!(
            ops_vec::merge_join(&r, &s, 1, &Condition::always()),
            ops::merge_join(&r, &s, 1, &Condition::always())
        );
        prop_assert_eq!(
            ops_vec::merge_semijoin(&r, &s, 1, &Condition::always()),
            ops::merge_semijoin(&r, &s, 1, &Condition::always())
        );
    }
}
