//! Join-order enumeration and the worst-case-optimal multiway join.
//!
//! Three axes:
//!
//! * **planning overhead** — `PhysicalPlan` construction per
//!   [`JoinOrder`] mode on a 3-relation chain: the DP enumerator must
//!   cost microseconds, negligible against the joins it reorders;
//! * **chain execution** — the badly-written chain end to end per mode
//!   (the win the `joinorder` experiment asserts);
//! * **triangle execution** — zipf-skewed triangles per mode, where
//!   `Dp` routes through the generic multiway operator, serial and at
//!   4 workers (the operator partitions its probe axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sj_algebra::{Condition, Expr};
use sj_eval::{Engine, JoinOrder, Parallelism, StatsMode};
use sj_storage::{Database, Relation, Tuple};
use sj_workload::{CyclicWorkload, EdgeDist};
use std::time::Duration;

fn chain_db(n: usize) -> Database {
    let mut db = Database::new();
    db.set(
        "R",
        Relation::from_tuples(2, (0..n as i64).map(|i| Tuple::from_ints(&[i % 50, i]))).unwrap(),
    );
    let m = (n / 100) as i64;
    db.set(
        "S",
        Relation::from_tuples(2, (0..m).map(|i| Tuple::from_ints(&[i, i % 3]))).unwrap(),
    );
    db.set(
        "T",
        Relation::from_tuples(2, (0..3i64).map(|i| Tuple::from_ints(&[i, i]))).unwrap(),
    );
    db
}

fn chain_expr() -> Expr {
    Expr::rel("R")
        .join(Condition::eq(1, 2), Expr::rel("S"))
        .join(Condition::eq(3, 1), Expr::rel("T"))
}

const MODES: [JoinOrder; 3] = [JoinOrder::AsWritten, JoinOrder::Greedy, JoinOrder::Dp];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_order");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    // Planning overhead: explain() plans without executing.
    let plan_db = chain_db(4096);
    for mode in MODES {
        let engine = Engine::new(plan_db.clone())
            .stats(StatsMode::Cached)
            .join_order(mode);
        engine.query(chain_expr()).explain().unwrap(); // warm the catalog
        group.bench_with_input(BenchmarkId::new("plan_chain", mode), &(), |b, _| {
            b.iter(|| engine.query(chain_expr()).explain().unwrap())
        });
    }

    // Chain execution per mode.
    let exec_db = chain_db(20_000);
    for mode in MODES {
        let engine = Engine::new(exec_db.clone())
            .stats(StatsMode::Cached)
            .join_order(mode);
        group.bench_with_input(BenchmarkId::new("exec_chain", mode), &(), |b, _| {
            b.iter(|| engine.query(chain_expr()).run().unwrap().relation)
        });
    }

    // Skewed-triangle execution per mode; Dp routes through the
    // multiway operator, also measured at 4 workers.
    let w = CyclicWorkload {
        cycle_len: 3,
        edges_per_table: 4096,
        vertices: 1024,
        edges: EdgeDist::Zipf(1.2),
        seed: 0xC7C1,
    };
    let (tri_db, tri_q) = (w.database(), w.query());
    for mode in MODES {
        let engine = Engine::new(tri_db.clone())
            .stats(StatsMode::Cached)
            .join_order(mode);
        group.bench_with_input(BenchmarkId::new("exec_triangle", mode), &(), |b, _| {
            b.iter(|| engine.query(tri_q.clone()).run().unwrap().relation)
        });
    }
    let par = Engine::new(tri_db.clone())
        .stats(StatsMode::Cached)
        .join_order(JoinOrder::Dp)
        .parallelism(Parallelism::Threads(4));
    group.bench_with_input(BenchmarkId::new("exec_triangle", "dp-4w"), &(), |b, _| {
        b.iter(|| par.query(tri_q.clone()).run().unwrap().relation)
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
